/**
 * @file
 * Unit tests for the open-loop arrival engine and the orchestrator's
 * admission-control path (admitRequest, backpressure policies, SLO
 * accounting). See docs/load-engine.md.
 */

#include <gtest/gtest.h>

#include "faas/platform.hpp"
#include "faas/sharded.hpp"
#include "faas/workload.hpp"
#include "obs/metrics.hpp"
#include "snap/snapshotter.hpp"

namespace eaao::faas {
namespace {

PlatformConfig
smallConfig(std::uint64_t seed)
{
    PlatformConfig cfg;
    cfg.profile = DataCenterProfile::usEast1();
    cfg.profile.host_count = 330;
    cfg.seed = seed;
    return cfg;
}

TEST(AdmitRequest, WarmHitServesImmediately)
{
    Platform p(smallConfig(1));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    // Warm an instance through the closed-loop path, let it idle.
    p.orchestrator().routeRequest(svc, sim::Duration::millis(100));
    p.advance(sim::Duration::seconds(30));

    const AdmissionResult r =
        p.orchestrator().admitRequest(svc, sim::Duration::millis(100));
    EXPECT_EQ(r.outcome, AdmissionOutcome::Served);
    EXPECT_NE(r.instance, kNoInstance);
    const SloStats &slo = p.orchestrator().sloStats();
    EXPECT_EQ(slo.admitted, 1u);
    EXPECT_EQ(slo.served_warm, 1u);
    EXPECT_EQ(slo.queued, 0u);
    // Warm latency is pure service time.
    EXPECT_DOUBLE_EQ(slo.latency_s.sum, 0.1);
}

TEST(AdmitRequest, ColdArrivalWaitsOutOneStartup)
{
    Platform p(smallConfig(2));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);

    const AdmissionResult r =
        p.orchestrator().admitRequest(svc, sim::Duration::millis(100));
    EXPECT_EQ(r.outcome, AdmissionOutcome::Queued);
    EXPECT_EQ(r.instance, kNoInstance);
    EXPECT_EQ(p.orchestrator().admissionBacklog(svc), 1u);

    // Gen 1 startup bills 1.5 s; the queued request dispatches then.
    p.advance(sim::Duration::seconds(2));
    const SloStats &slo = p.orchestrator().sloStats();
    EXPECT_EQ(slo.dispatched, 1u);
    EXPECT_EQ(p.orchestrator().admissionBacklog(svc), 0u);
    ASSERT_EQ(slo.cold_wait_s.count, 1u);
    EXPECT_NEAR(slo.cold_wait_s.sum, 1.5, 1e-9);
    // End-to-end latency = wait + service time.
    ASSERT_EQ(slo.latency_s.count, 1u);
    EXPECT_NEAR(slo.latency_s.sum, 1.6, 1e-9);
}

TEST(AdmitRequest, CompletionDispatchesQueuedEarly)
{
    Platform p(smallConfig(3));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    // Occupy the only instance for 500 ms...
    p.orchestrator().routeRequest(svc, sim::Duration::millis(500));
    // ...then queue an open-loop arrival whose cold start would take
    // 1.5 s. The completion at t=0.5 s must dispatch it early.
    const AdmissionResult r =
        p.orchestrator().admitRequest(svc, sim::Duration::millis(100));
    EXPECT_EQ(r.outcome, AdmissionOutcome::Queued);

    p.advance(sim::Duration::millis(700));
    const SloStats &slo = p.orchestrator().sloStats();
    ASSERT_EQ(slo.dispatched, 1u);
    EXPECT_NEAR(slo.cold_wait_s.sum, 0.5, 1e-9);
    // Only the cold start's instance exists; no second was created.
    EXPECT_EQ(p.orchestrator().instanceCount(), 1u);
}

TEST(AdmitRequest, RejectPolicyDropsOverflow)
{
    PlatformConfig cfg = smallConfig(4);
    cfg.orchestrator.admission_depth = 2;
    cfg.orchestrator.shed_policy = ShedPolicy::Reject;
    Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);

    const sim::Duration st = sim::Duration::millis(100);
    EXPECT_EQ(p.orchestrator().admitRequest(svc, st).outcome,
              AdmissionOutcome::Queued);
    EXPECT_EQ(p.orchestrator().admitRequest(svc, st).outcome,
              AdmissionOutcome::Queued);
    EXPECT_EQ(p.orchestrator().admitRequest(svc, st).outcome,
              AdmissionOutcome::Rejected);
    EXPECT_EQ(p.orchestrator().admissionBacklog(svc), 2u);
    EXPECT_EQ(p.orchestrator().sloStats().rejected, 1u);
}

TEST(AdmitRequest, ShedOldestDisplacesTheHead)
{
    PlatformConfig cfg = smallConfig(5);
    cfg.orchestrator.admission_depth = 1;
    cfg.orchestrator.shed_policy = ShedPolicy::ShedOldest;
    Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);

    const sim::Duration st = sim::Duration::millis(100);
    EXPECT_EQ(p.orchestrator().admitRequest(svc, st).outcome,
              AdmissionOutcome::Queued);
    EXPECT_EQ(p.orchestrator().admitRequest(svc, st).outcome,
              AdmissionOutcome::Shed);
    EXPECT_EQ(p.orchestrator().admissionBacklog(svc), 1u);
    const SloStats &slo = p.orchestrator().sloStats();
    EXPECT_EQ(slo.shed, 1u);
    EXPECT_EQ(slo.queued, 2u);
    // The displaced head never dispatches; the survivor does.
    p.advance(sim::Duration::seconds(3));
    EXPECT_EQ(p.orchestrator().sloStats().dispatched, 1u);
}

TEST(AdmitRequest, QueuePolicyIgnoresDepth)
{
    PlatformConfig cfg = smallConfig(6);
    cfg.orchestrator.admission_depth = 1;
    cfg.orchestrator.shed_policy = ShedPolicy::Queue;
    Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);

    const sim::Duration st = sim::Duration::millis(100);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(p.orchestrator().admitRequest(svc, st).outcome,
                  AdmissionOutcome::Queued);
    }
    EXPECT_EQ(p.orchestrator().admissionBacklog(svc), 5u);
    // All five eventually dispatch (serialized cold starts + reuse).
    p.advance(sim::Duration::minutes(1));
    EXPECT_EQ(p.orchestrator().sloStats().dispatched, 5u);
}

/** Run one engine over @p spec and return the platform's SLO stats. */
SloStats
runEngine(std::uint64_t seed, const ArrivalSpec &spec,
          std::uint64_t *generated = nullptr,
          std::uint32_t concurrency = 50)
{
    Platform p(smallConfig(seed));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    p.orchestrator().setMaxConcurrency(svc, concurrency);
    ArrivalEngine engine(p, svc, spec, sim::Rng(seed * 7919 + 1));
    engine.start();
    p.clock().runUntil(engine.end() + sim::Duration::minutes(1));
    if (generated != nullptr)
        *generated = engine.generated();
    return p.orchestrator().sloStats();
}

TEST(ArrivalEngine, PoissonRateIsRespected)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.rate_rps = 200.0;
    spec.span = sim::Duration::minutes(1);
    spec.mean_service_time = sim::Duration::millis(50);
    std::uint64_t generated = 0;
    const SloStats slo = runEngine(10, spec, &generated);
    // 200 rps x 60 s = 12k expected arrivals; Poisson sd ~110.
    EXPECT_NEAR(static_cast<double>(generated), 12000.0, 500.0);
    EXPECT_EQ(slo.admitted, generated);
    EXPECT_EQ(slo.served_warm + slo.queued, slo.admitted);
    // Every queued request eventually dispatched (Queue policy).
    EXPECT_EQ(slo.dispatched, slo.queued);
    EXPECT_EQ(slo.latency_s.count, slo.admitted);
}

TEST(ArrivalEngine, DiurnalAndParetoKeepTheMeanRate)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Diurnal, ArrivalKind::Pareto}) {
        ArrivalSpec spec;
        spec.kind = kind;
        spec.rate_rps = 100.0;
        spec.burst_factor = 3.0;
        spec.span = sim::Duration::minutes(2);
        spec.mean_service_time = sim::Duration::millis(20);
        std::uint64_t generated = 0;
        runEngine(11 + static_cast<int>(kind), spec, &generated);
        // 100 rps x 120 s = 12k; allow a generous burst tolerance.
        EXPECT_NEAR(static_cast<double>(generated), 12000.0, 1200.0)
            << "kind " << static_cast<int>(kind);
    }
}

TEST(ArrivalEngine, IdenticalSeedsAreByteDeterministic)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Pareto;
    spec.rate_rps = 150.0;
    spec.burst_factor = 2.0;
    spec.span = sim::Duration::seconds(45);
    std::uint64_t gen_a = 0, gen_b = 0;
    const SloStats a = runEngine(12, spec, &gen_a);
    const SloStats b = runEngine(12, spec, &gen_b);
    EXPECT_EQ(gen_a, gen_b);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.served_warm, b.served_warm);
    EXPECT_EQ(a.queued, b.queued);
    EXPECT_EQ(a.dispatched, b.dispatched);
    EXPECT_EQ(a.latency_s.counts, b.latency_s.counts);
    EXPECT_EQ(a.latency_s.sum, b.latency_s.sum);
    EXPECT_EQ(a.cold_wait_s.counts, b.cold_wait_s.counts);
}

TEST(ArrivalEngine, ChurnForcesReconnections)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.rate_rps = 50.0;
    spec.span = sim::Duration::seconds(35);
    spec.churn_every = sim::Duration::seconds(10);
    spec.mean_service_time = sim::Duration::millis(20);
    std::uint64_t with_churn = 0;
    const SloStats slo = runEngine(13, spec, &with_churn);
    EXPECT_GT(with_churn, 0u);
    EXPECT_EQ(slo.served_warm + slo.queued, slo.admitted);
    // Churn tears down warm capacity, so some arrivals must re-queue
    // after each disconnect boundary.
    EXPECT_GT(slo.queued, 1u);
}

TEST(SloQuantiles, HistogramQuantileInterpolates)
{
    obs::Histogram h;
    h.bounds = {1.0, 2.0, 4.0};
    // 10 observations at 0.5, 10 at 1.5: p50 sits at the 1|2 seam.
    for (int i = 0; i < 10; ++i)
        h.observe(0.5);
    for (int i = 0; i < 10; ++i)
        h.observe(1.5);
    EXPECT_NEAR(obs::histogramQuantile(h, 0.5), 1.0, 1e-9);
    EXPECT_GT(obs::histogramQuantile(h, 0.9), 1.0);
    EXPECT_LE(obs::histogramQuantile(h, 1.0), 1.5);
    // Quantiles never exceed the observed max (overflow bucket).
    h.observe(100.0);
    EXPECT_LE(obs::histogramQuantile(h, 1.0), 100.0);

    const obs::Histogram empty;
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(empty, 0.99), 0.0);
}

// --------------------------------------------------- sharded open loop

ShardedConfig
shardedConfig(std::uint32_t shards, unsigned threads)
{
    ShardedConfig cfg;
    cfg.profile.host_count = 550; // 5 lanes
    cfg.seed = 777;
    cfg.shards = shards;
    cfg.threads = threads;
    return cfg;
}

/** One open-loop stream per lane, cycling the three arrival kinds. */
std::vector<ShardOp>
openLoopOps(ShardedPlatform &platform, sim::SimTime &horizon)
{
    using Kind = ShardOp::Kind;
    std::vector<ShardOp> ops;
    for (std::uint32_t lane = 0; lane < platform.laneCount(); ++lane) {
        const AccountId acct = platform.createAccount(lane, 1000);
        const ServiceId svc =
            platform.deployService(acct, ExecEnv::Gen1);
        ShardOp warm;
        warm.kind = Kind::Connect;
        warm.step = 0;
        warm.service = svc;
        warm.account = acct;
        warm.a = 5;
        ops.push_back(warm);

        ShardOp ol;
        ol.kind = Kind::OpenLoop;
        ol.at = sim::SimTime() + sim::Duration::minutes(1);
        ol.step = 1;
        ol.service = svc;
        ol.account = acct;
        ol.a = lane % 3; // Poisson / Diurnal / Pareto round-robin
        ol.rate = 60.0;
        ol.burst = 2.5;
        ol.dur = sim::Duration::millis(100);
        ol.span = sim::Duration::minutes(4);
        if (lane == 0)
            ol.gap = sim::Duration::seconds(20); // churn on one lane
        ops.push_back(ol);
    }
    horizon = sim::SimTime() + sim::Duration::minutes(6);
    return ops;
}

TEST(ShardedOpenLoop, LogIsGroupingInvariant)
{
    std::string logs[2];
    std::uint64_t arrivals[2] = {0, 0};
    int i = 0;
    for (const auto &[shards, threads] :
         {std::pair<std::uint32_t, unsigned>{1, 1}, {4, 4}}) {
        ShardedPlatform platform(shardedConfig(shards, threads));
        sim::SimTime horizon;
        platform.run(openLoopOps(platform, horizon), horizon);
        logs[i] = platform.renderLog();
        arrivals[i] = platform.totals().open_loop;
        ++i;
    }
    EXPECT_GT(arrivals[0], 0u);
    EXPECT_EQ(arrivals[0], arrivals[1]);
    EXPECT_EQ(logs[0], logs[1]);
    // The conditional slo sections actually rendered.
    EXPECT_NE(logs[0].find("open_loop "), std::string::npos);
    EXPECT_NE(logs[0].find("slo_latency_s "), std::string::npos);
}

TEST(ShardedOpenLoop, StreamsSurviveCheckpointRestore)
{
    // Straight run, capturing pre-fold at a barrier mid-span (window
    // 30 s; the streams run from 1 min to 5 min, so barrier 6 lands
    // at 3 min with every cursor live).
    ShardedPlatform ref(shardedConfig(2, 1));
    sim::SimTime horizon;
    ref.beginRun(openLoopOps(ref, horizon), horizon);
    for (std::uint32_t w = 0; w < 6; ++w) {
        ref.advanceWindow();
        ref.completeWindow();
    }
    ref.advanceWindow();
    const std::vector<std::uint8_t> image = snap::Snapshotter::capture(ref);
    ref.completeWindow();
    ref.resumeRun();

    // Restore into a differently-grouped platform and finish.
    ShardedPlatform resumed(shardedConfig(5, 4));
    std::string error;
    ASSERT_TRUE(snap::Snapshotter::restore(image, resumed, error))
        << error;
    resumed.resumeRun();

    EXPECT_EQ(ref.totals().open_loop, resumed.totals().open_loop);
    EXPECT_GT(resumed.totals().open_loop, 0u);
    EXPECT_EQ(ref.renderLog(), resumed.renderLog());
}

} // namespace
} // namespace eaao::faas
