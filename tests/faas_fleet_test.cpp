/**
 * @file
 * Unit tests for fleet construction and the placement trace.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/strategy.hpp"
#include "faas/fleet.hpp"
#include "faas/platform.hpp"
#include "faas/trace.hpp"

namespace eaao::faas {
namespace {

Fleet
makeFleet(const DataCenterProfile &profile, std::uint64_t seed = 1)
{
    sim::Rng rng(seed);
    return Fleet(profile, hw::TscConfig{}, hw::TimingNoiseConfig{},
                 sim::SimTime(), rng);
}

TEST(Fleet, ShardPartitionCoversAllHosts)
{
    const auto profile = DataCenterProfile::usEast1();
    Fleet fleet = makeFleet(profile);
    EXPECT_EQ(fleet.size(), profile.host_count);
    EXPECT_EQ(fleet.shardCount(),
              (profile.host_count + profile.shard_size - 1) /
                  profile.shard_size);

    std::size_t total = 0;
    for (std::uint32_t s = 0; s < fleet.shardCount(); ++s) {
        const auto &members = fleet.shardHosts(s);
        total += members.size();
        EXPECT_LE(members.size(), profile.shard_size);
        for (const hw::HostId h : members)
            EXPECT_EQ(fleet.shardOf(h), s);
    }
    EXPECT_EQ(total, fleet.size());
}

TEST(Fleet, PopularityRanksArePerShardPermutations)
{
    Fleet fleet = makeFleet(DataCenterProfile::usWest1());
    for (std::uint32_t s = 0; s < fleet.shardCount(); ++s) {
        const auto &members = fleet.shardHosts(s);
        std::set<std::uint32_t> ranks;
        for (const hw::HostId h : members)
            ranks.insert(fleet.popularityRank(h));
        EXPECT_EQ(ranks.size(), members.size());
        EXPECT_EQ(*ranks.begin(), 0u);
        EXPECT_EQ(*ranks.rbegin(),
                  static_cast<std::uint32_t>(members.size() - 1));
        // shardHosts is popularity-ordered.
        for (std::size_t k = 0; k < members.size(); ++k)
            EXPECT_EQ(fleet.popularityRank(members[k]), k);
    }
}

TEST(Fleet, BootTimesPrecedeEpochAndMixWaves)
{
    Fleet fleet = makeFleet(DataCenterProfile::usEast1(), 7);
    std::map<std::int64_t, int> minute_buckets;
    for (hw::HostId h = 0; h < fleet.size(); ++h) {
        const sim::SimTime boot = fleet.host(h).tsc().bootTime();
        EXPECT_LE(boot, sim::SimTime() - sim::Duration::hours(1));
        ++minute_buckets[boot.ns() / sim::Duration::minutes(30).ns()];
    }
    // Maintenance waves concentrate many boots into a few 30-minute
    // windows.
    int crowded = 0;
    for (const auto &[bucket, count] : minute_buckets)
        crowded += (count >= 10);
    EXPECT_GE(crowded, 4);
}

TEST(Fleet, LabelErrorsAreMostlySmallWithATail)
{
    Fleet fleet = makeFleet(DataCenterProfile::usCentral1(), 9);
    int small = 0, large = 0;
    for (hw::HostId h = 0; h < fleet.size(); ++h) {
        const auto &tsc = fleet.host(h).tsc();
        const double eps = std::fabs(tsc.trueHz() - tsc.nominalHz());
        small += (eps < 5e3);
        large += (eps > 20e3);
    }
    const double n = fleet.size();
    EXPECT_GT(small / n, 0.75); // the core population
    EXPECT_GT(large / n, 0.01); // the heavy tail exists
    EXPECT_LT(large / n, 0.15);
}

TEST(PlacementTrace, RecordsReasonsAcrossTheLifecycle)
{
    PlatformConfig cfg;
    cfg.profile = DataCenterProfile::usEast1();
    cfg.seed = 12;
    Platform p(cfg);
    PlacementTrace trace;
    p.orchestrator().attachTrace(&trace);

    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);

    // Cold launch: everything is cold-base.
    p.connect(svc, 400);
    EXPECT_EQ(trace.countByReason(PlacementReason::ColdBase), 400u);
    EXPECT_EQ(trace.countByReason(PlacementReason::HotHelper), 0u);

    // Relaunch within the demand window: reuse + hot-helper creations.
    p.disconnectAll(svc);
    p.advance(sim::Duration::minutes(10));
    trace.clear();
    p.connect(svc, 400);
    EXPECT_GT(trace.countByReason(PlacementReason::HotHelper), 200u);
    EXPECT_GT(trace.countByReason(PlacementReason::Reuse), 0u);
    EXPECT_EQ(trace.countByReason(PlacementReason::ColdBase), 0u);

    // Events carry coherent metadata.
    for (const auto &event : trace.events()) {
        EXPECT_EQ(event.service, svc);
        EXPECT_EQ(event.account, acct);
        EXPECT_LT(event.host, p.fleet().size());
    }
}

TEST(PlacementTrace, CentralSpillsShowUp)
{
    PlatformConfig cfg;
    cfg.profile = DataCenterProfile::usCentral1();
    cfg.profile.host_count = 550;
    cfg.seed = 13;
    Platform p(cfg);
    PlacementTrace trace;
    p.orchestrator().attachTrace(&trace);

    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    p.connect(svc, 400);
    const auto spills =
        trace.countByReason(PlacementReason::ColdSpill);
    // ~15% of cold placements leak in us-central1.
    EXPECT_GT(spills, 30u);
    EXPECT_LT(spills, 110u);
}

TEST(PlacementTrace, ReasonNamesRender)
{
    EXPECT_STREQ(toString(PlacementReason::ColdBase), "cold-base");
    EXPECT_STREQ(toString(PlacementReason::HotHelper), "hot-helper");
    EXPECT_STREQ(toString(PlacementReason::ColdSpill), "cold-spill");
    EXPECT_STREQ(toString(PlacementReason::ColdOverflow),
                 "cold-overflow");
    EXPECT_STREQ(toString(PlacementReason::Reuse), "reuse");
}

TEST(ApparentHostCounter, AdjacentBucketsMergeDistantOnesDoNot)
{
    core::ApparentHostCounter counter(1.0);
    core::Gen1Reading r;
    r.cpu_model = "Intel Xeon CPU @ 2.00GHz";
    r.tboot_s = 100.0;
    EXPECT_TRUE(counter.add(r));
    r.tboot_s = 101.6; // adjacent bucket: same drifting host
    EXPECT_FALSE(counter.add(r));
    r.tboot_s = 120.0; // far away: a different host
    EXPECT_TRUE(counter.add(r));
    r.cpu_model = "Intel Xeon CPU @ 2.20GHz";
    r.tboot_s = 100.0; // same bucket, different model
    EXPECT_TRUE(counter.add(r));
    EXPECT_EQ(counter.count(), 3u);
}

TEST(ApparentHostCounter, ChainsAcrossSlowDrift)
{
    core::ApparentHostCounter counter(1.0);
    core::Gen1Reading r;
    r.cpu_model = "Intel Xeon CPU @ 2.00GHz";
    std::size_t new_hosts = 0;
    for (int step = 0; step < 10; ++step) {
        r.tboot_s = 100.0 + step * 1.5; // 1.5 buckets per observation
        new_hosts += counter.add(r);
    }
    EXPECT_EQ(new_hosts, 1u); // one host, tracked through its drift
}

} // namespace
} // namespace eaao::faas
