/**
 * @file
 * Unit tests for statistics: summaries, regression, clustering metrics,
 * CDFs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/cdf.hpp"
#include "stats/clustering.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace eaao::stats {
namespace {

TEST(OnlineStats, MeanVarianceExtrema)
{
    OnlineStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyAndSingle)
{
    OnlineStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    OnlineStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0;
        all.add(x);
        (i < 40 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Percentile, InterpolatesOrderStatistics)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(VectorHelpers, MeanAndStddev)
{
    const std::vector<double> xs = {2.0, 4.0, 6.0};
    EXPECT_DOUBLE_EQ(meanOf(xs), 4.0);
    EXPECT_DOUBLE_EQ(stddevOf(xs), 2.0);
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(stddevOf({1.0}), 0.0);
}

TEST(LinearRegression, RecoversExactLine)
{
    std::vector<double> x, y;
    for (int i = 0; i < 20; ++i) {
        x.push_back(i);
        y.push_back(3.0 * i - 7.0);
    }
    const LinearFit fit = linearRegression(x, y);
    EXPECT_NEAR(fit.slope, 3.0, 1e-12);
    EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
    EXPECT_NEAR(fit.r_value, 1.0, 1e-12);
    EXPECT_NEAR(fit.at(100.0), 293.0, 1e-9);
}

TEST(LinearRegression, NegativeSlopeNegativeR)
{
    const std::vector<double> x = {0, 1, 2, 3};
    const std::vector<double> y = {10, 8, 6, 4};
    const LinearFit fit = linearRegression(x, y);
    EXPECT_NEAR(fit.slope, -2.0, 1e-12);
    EXPECT_NEAR(fit.r_value, -1.0, 1e-12);
}

TEST(LinearRegression, FlatSeriesIsPerfectlyExplained)
{
    const std::vector<double> x = {0, 1, 2};
    const std::vector<double> y = {5, 5, 5};
    const LinearFit fit = linearRegression(x, y);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.r_value, 1.0);
}

TEST(LinearRegression, NoisyLineHighR)
{
    std::vector<double> x, y;
    for (int i = 0; i < 100; ++i) {
        x.push_back(i);
        y.push_back(0.5 * i + ((i % 2) ? 0.01 : -0.01));
    }
    const LinearFit fit = linearRegression(x, y);
    EXPECT_NEAR(fit.slope, 0.5, 1e-4);
    EXPECT_GT(std::fabs(fit.r_value), 0.9997);
}

TEST(PairConfusion, PerfectClusteringScoresOne)
{
    const std::vector<std::uint64_t> truth = {1, 1, 2, 2, 3};
    const PairConfusion pc = comparePairs(truth, truth);
    EXPECT_EQ(pc.fp, 0u);
    EXPECT_EQ(pc.fn, 0u);
    EXPECT_DOUBLE_EQ(pc.precision(), 1.0);
    EXPECT_DOUBLE_EQ(pc.recall(), 1.0);
    EXPECT_DOUBLE_EQ(pc.fmi(), 1.0);
}

TEST(PairConfusion, KnownCounts)
{
    // predicted: {a,b} {c,d}; truth: {a,b,c} {d}
    const std::vector<std::uint64_t> pred = {0, 0, 1, 1};
    const std::vector<std::uint64_t> truth = {7, 7, 7, 9};
    const PairConfusion pc = comparePairs(pred, truth);
    // pairs: ab(TP), cd(FP pred-same/truth-diff), ac,bc(FN), ad,bd(TN)
    EXPECT_EQ(pc.tp, 1u);
    EXPECT_EQ(pc.fp, 1u);
    EXPECT_EQ(pc.fn, 2u);
    EXPECT_EQ(pc.tn, 2u);
    EXPECT_DOUBLE_EQ(pc.precision(), 0.5);
    EXPECT_NEAR(pc.recall(), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(pc.fmi(), std::sqrt(0.5 / 3.0), 1e-12);
}

TEST(PairConfusion, AllSingletonsHasNoPositives)
{
    const std::vector<std::uint64_t> pred = {0, 1, 2, 3};
    const std::vector<std::uint64_t> truth = {5, 6, 7, 8};
    const PairConfusion pc = comparePairs(pred, truth);
    EXPECT_EQ(pc.tp + pc.fp + pc.fn, 0u);
    EXPECT_EQ(pc.tn, 6u);
    EXPECT_DOUBLE_EQ(pc.fmi(), 1.0); // vacuous perfection
}

TEST(PairConfusion, TotalsSumToAllPairs)
{
    const std::vector<std::uint64_t> pred = {0, 0, 1, 1, 2, 0};
    const std::vector<std::uint64_t> truth = {3, 4, 3, 4, 3, 3};
    const PairConfusion pc = comparePairs(pred, truth);
    EXPECT_EQ(pc.tp + pc.fp + pc.fn + pc.tn, 15u); // C(6,2)
}

TEST(ClusterSizeHistogram, CountsClusterSizes)
{
    const std::vector<std::uint64_t> labels = {1, 1, 1, 2, 2, 3};
    const auto hist = clusterSizeHistogram(labels);
    ASSERT_EQ(hist.size(), 4u);
    EXPECT_EQ(hist[1], 1u); // one singleton
    EXPECT_EQ(hist[2], 1u); // one pair
    EXPECT_EQ(hist[3], 1u); // one triple
    EXPECT_EQ(distinctCount(labels), 3u);
}

TEST(EmpiricalCdf, EvaluatesAndInverts)
{
    EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.5);
    EXPECT_DOUBLE_EQ(cdf.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.maxValue(), 4.0);
}

TEST(EmpiricalCdf, SeriesIsMonotone)
{
    EmpiricalCdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
    const auto series = cdf.series(0.0, 6.0, 13);
    ASSERT_EQ(series.size(), 13u);
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GE(series[i].second, series[i - 1].second);
    EXPECT_DOUBLE_EQ(series.front().second, 0.0);
    EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Histogram, BinsAndClamps)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0); // clamps into bin 0
    h.add(0.5);
    h.add(9.9);
    h.add(25.0); // clamps into last bin
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

} // namespace
} // namespace eaao::stats
