/**
 * @file
 * Edge-case tests for the Section 6 defenses: contention-detector
 * threshold and window boundaries, and the interaction between the TSC
 * policies and the Gen 2 frequency fingerprint.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/strategy.hpp"
#include "defense/detector.hpp"
#include "defense/tsc_defense.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"

namespace eaao::defense {
namespace {

sim::SimTime
at(std::int64_t seconds)
{
    return sim::SimTime::fromNanos(seconds * 1'000'000'000);
}

DetectorConfig
smallConfig()
{
    DetectorConfig cfg;
    cfg.window = sim::Duration::minutes(10);
    cfg.burst_threshold = 3;
    return cfg;
}

TEST(ContentionDetectorEdge, FlagsExactlyAtThreshold)
{
    ContentionDetector det(smallConfig());
    det.recordBurst(at(10), 7, {1}, 2);
    EXPECT_TRUE(det.flaggedHosts(at(10)).empty());
    det.recordBurst(at(11), 7, {1}, 1);
    // count == threshold must flag (>=, not >).
    EXPECT_EQ(det.flaggedHosts(at(11)), std::vector<hw::HostId>{7});
}

TEST(ContentionDetectorEdge, AccumulatesAcrossCalls)
{
    ContentionDetector det(smallConfig());
    for (int i = 0; i < 3; ++i)
        det.recordBurst(at(10 + i), 4, {2}, 1);
    EXPECT_EQ(det.flaggedHosts(at(13)), std::vector<hw::HostId>{4});
    EXPECT_EQ(det.totalBursts(), 3u);
}

TEST(ContentionDetectorEdge, EventExactlyAtCutoffSurvives)
{
    // expire() drops `when < cutoff`: an event aged exactly the window
    // length still counts, one nanosecond older does not.
    ContentionDetector det(smallConfig());
    det.recordBurst(at(0), 9, {1}, 3);
    const sim::SimTime exactly = at(0) + det.config().window;
    EXPECT_EQ(det.flaggedHosts(exactly), std::vector<hw::HostId>{9});
    EXPECT_TRUE(
        det.flaggedHosts(exactly + sim::Duration::nanos(1)).empty());
}

TEST(ContentionDetectorEdge, ExpiryDecrementsPartially)
{
    ContentionDetector det(smallConfig());
    det.recordBurst(at(0), 5, {1}, 2);
    det.recordBurst(at(300), 5, {1}, 2);
    EXPECT_EQ(det.flaggedHosts(at(300)), std::vector<hw::HostId>{5});
    // The first burst ages out; the survivor alone is under threshold.
    EXPECT_TRUE(det.flaggedHosts(at(650)).empty());
    // New pressure re-flags the host without double-counting history.
    det.recordBurst(at(660), 5, {3}, 1);
    EXPECT_EQ(det.flaggedHosts(at(660)), std::vector<hw::HostId>{5});
}

TEST(ContentionDetectorEdge, FlaggedHostsSortedAcrossInsertOrder)
{
    ContentionDetector det(smallConfig());
    det.recordBurst(at(1), 42, {1}, 3);
    det.recordBurst(at(2), 7, {1}, 3);
    det.recordBurst(at(3), 19, {1}, 3);
    EXPECT_EQ(det.flaggedHosts(at(3)),
              (std::vector<hw::HostId>{7, 19, 42}));
}

TEST(ContentionDetectorEdge, ImplicatesOnlyAccountsOnFlaggedHosts)
{
    ContentionDetector det(smallConfig());
    det.recordBurst(at(1), 1, {10, 11}, 3); // flagged
    det.recordBurst(at(2), 2, {12}, 1);     // below threshold
    det.recordBurst(at(3), 1, {10, 13}, 1); // same host, dedup accounts
    const std::set<faas::AccountId> got = det.implicatedAccounts(at(3));
    EXPECT_EQ(got, (std::set<faas::AccountId>{10, 11, 13}));
}

TEST(ContentionDetectorEdge, ZeroEventRecordIsInert)
{
    ContentionDetector det(smallConfig());
    det.recordBurst(at(1), 3, {1}, 0);
    EXPECT_TRUE(det.flaggedHosts(at(1)).empty());
    EXPECT_EQ(det.totalBursts(), 0u);
}

// --- TSC policies versus the Gen 2 frequency fingerprint -----------

faas::PlatformConfig
gen2Config(std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 330;
    cfg.seed = seed;
    return cfg;
}

core::LaunchObservation
launchGen2(faas::Platform &platform, std::uint32_t instances)
{
    const faas::AccountId acct = platform.createAccount();
    const faas::ServiceId svc =
        platform.deployService(acct, faas::ExecEnv::Gen2);
    core::LaunchOptions launch;
    launch.instances = instances;
    launch.disconnect_after = false;
    return core::launchAndObserve(platform, svc, launch);
}

TEST(TscDefenseGen2, OffsetOnlyFingerprintTracksHosts)
{
    faas::Platform p(gen2Config(11));
    const core::LaunchObservation obs = launchGen2(p, 150);
    std::vector<std::uint64_t> oracle;
    for (const faas::InstanceId id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));
    const stats::PairConfusion pc = stats::comparePairs(obs.fp_keys, oracle);
    // The kernel-refined frequency is near-unique per host: the
    // fingerprint clusters track physical hosts tightly. Precision is
    // below 1 because a few hosts collide at kHz granularity, but it
    // stays far above the OffsetAndScale collapse (< 0.3 below).
    EXPECT_GT(pc.recall(), 0.95);
    EXPECT_GT(pc.precision(), 0.7);
}

TEST(TscDefenseGen2, OffsetAndScaleCollapsesFingerprintPrecision)
{
    faas::PlatformConfig cfg = gen2Config(11);
    cfg.tsc_defense.gen2 = Gen2TscPolicy::OffsetAndScale;
    faas::Platform p(cfg);
    const core::LaunchObservation obs = launchGen2(p, 150);
    std::vector<std::uint64_t> oracle;
    for (const faas::InstanceId id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));
    // Scaling leaves only per-SKU nominal frequencies: instances on
    // different hosts of the same SKU become indistinguishable, so the
    // fingerprint lumps many hosts together (precision collapses) even
    // though co-located instances still match (recall stays high).
    EXPECT_LE(stats::distinctCount(obs.fp_keys), 8u);
    const stats::PairConfusion pc = stats::comparePairs(obs.fp_keys, oracle);
    EXPECT_GT(pc.recall(), 0.95);
    EXPECT_LT(pc.precision(), 0.3);
}

TEST(TscDefenseGen2, Gen1TrapEmulateLeavesGen2Untouched)
{
    // The Gen 1 trap-and-emulate policy must not perturb Gen 2
    // readings: same seed, different gen1 policy, identical keys.
    faas::PlatformConfig native = gen2Config(12);
    faas::PlatformConfig trapped = gen2Config(12);
    trapped.tsc_defense.gen1 = Gen1TscPolicy::TrapEmulate;

    faas::Platform pn(native);
    faas::Platform pt(trapped);
    const core::LaunchObservation on = launchGen2(pn, 60);
    const core::LaunchObservation ot = launchGen2(pt, 60);
    EXPECT_EQ(on.fp_keys, ot.fp_keys);
    EXPECT_EQ(on.class_keys, ot.class_keys);
}

} // namespace
} // namespace eaao::defense
