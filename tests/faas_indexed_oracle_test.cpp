/**
 * @file
 * Indexed-vs-reference oracle: the incremental placement/routing/spend
 * indexes must reproduce the retained linear-scan decision paths
 * exactly, not just statistically.
 *
 * `OrchestratorConfig::reference_scan` keeps the pre-index
 * implementations alive (full base-prefix scans, active-list routing
 * scans, whole-table spend scans). A randomized multi-service workload
 * is scripted once and replayed against both modes from the same seed;
 * every observable decision — placed hosts, placement reasons, routing
 * targets, restart replacements, account spend at arbitrary poll
 * points — must be identical. Spend is compared with EXPECT_EQ on
 * doubles, i.e. bit-exact, which is stronger than the "agree to the
 * cent" contract the experiments rely on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "faas/platform.hpp"
#include "faas/trace.hpp"
#include "sim/rng.hpp"

namespace eaao {
namespace {

/** One scripted operation; sampled once, replayed on both platforms. */
struct Op
{
    enum Kind : std::uint8_t {
        Route,
        Connect,
        Advance,
        SpendProbe,
        DisconnectAll,
        Restart,
        SetConcurrency,
    };
    Kind kind = Route;
    std::uint32_t a = 0; //!< service index / instance pick / limit
    std::uint32_t b = 0; //!< connect size / duration knob
};

std::vector<Op>
makeScript(std::uint64_t seed, std::size_t steps)
{
    sim::Rng rng(seed);
    std::vector<Op> script;
    script.reserve(steps);
    for (std::size_t i = 0; i < steps; ++i) {
        Op op;
        const std::uint64_t roll = rng.uniformInt(std::uint64_t{10});
        switch (roll) {
        case 0:
        case 1:
        case 2:
        case 3: op.kind = Op::Route; break;
        case 4: op.kind = Op::Connect; break;
        case 5: op.kind = Op::Advance; break;
        case 6: op.kind = Op::SpendProbe; break;
        case 7: op.kind = Op::DisconnectAll; break;
        case 8: op.kind = Op::Restart; break;
        default: op.kind = Op::SetConcurrency; break;
        }
        op.a = static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{1} << 30));
        op.b = static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{1} << 30));
        script.push_back(op);
    }
    return script;
}

/** Everything observable from one replay of the script. */
struct WorkloadLog
{
    std::vector<faas::PlacementEvent> trace;
    std::vector<faas::InstanceId> routed;
    std::vector<faas::InstanceId> restarted;
    std::vector<double> spend;
    std::size_t instance_count = 0;
    double final_spend_a = 0.0;
    double final_spend_b = 0.0;
};

WorkloadLog
runWorkload(const std::vector<Op> &script, std::uint64_t seed,
            bool reference)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    cfg.orchestrator.reference_scan = reference;
    faas::Platform platform(cfg);
    faas::Orchestrator &orch = platform.orchestrator();

    faas::PlacementTrace trace;
    orch.attachTrace(&trace);

    const auto acct_a = platform.createAccount();
    const auto acct_b = platform.createAccount(2);
    std::vector<faas::ServiceId> svcs;
    for (int s = 0; s < 3; ++s)
        svcs.push_back(platform.deployService(acct_a, faas::ExecEnv::Gen1));
    svcs.push_back(platform.deployService(acct_b, faas::ExecEnv::Gen1));

    WorkloadLog log;
    std::vector<faas::InstanceId> created;
    for (const Op &op : script) {
        const auto svc = svcs[op.a % svcs.size()];
        switch (op.kind) {
        case Op::Route: {
            const double service_s =
                0.02 + 0.01 * static_cast<double>(op.b % 6);
            log.routed.push_back(orch.routeRequest(
                svc, sim::Duration::fromSecondsF(service_s)));
            break;
        }
        case Op::Connect: {
            const auto ids = platform.connect(svc, 10 + op.b % 50);
            created.insert(created.end(), ids.begin(), ids.end());
            break;
        }
        case Op::Advance:
            platform.advance(
                sim::Duration::fromSecondsF(0.05 + 0.25 * (op.b % 8)));
            break;
        case Op::SpendProbe:
            log.spend.push_back(platform.accountSpendUsd(acct_a));
            log.spend.push_back(platform.accountSpendUsd(acct_b));
            break;
        case Op::DisconnectAll:
            platform.disconnectAll(svc);
            break;
        case Op::Restart: {
            if (created.empty())
                break;
            const auto id = created[op.b % created.size()];
            if (platform.instanceInfo(id).state ==
                faas::InstanceState::Terminated)
                break;
            log.restarted.push_back(platform.restartInstance(id));
            break;
        }
        case Op::SetConcurrency:
            orch.setMaxConcurrency(svc, 1 + op.b % 4);
            break;
        }
    }

    // Let in-flight work and idle reaps settle, then take the final
    // spends (the settle-on-transition paths all fire here).
    platform.advance(sim::Duration::minutes(30));
    log.final_spend_a = platform.accountSpendUsd(acct_a);
    log.final_spend_b = platform.accountSpendUsd(acct_b);
    log.instance_count = orch.instanceCount();

    orch.attachTrace(nullptr);
    log.trace = trace.events();
    return log;
}

void
expectIdentical(const WorkloadLog &idx, const WorkloadLog &ref)
{
    ASSERT_EQ(idx.trace.size(), ref.trace.size());
    for (std::size_t i = 0; i < idx.trace.size(); ++i) {
        const faas::PlacementEvent &a = idx.trace[i];
        const faas::PlacementEvent &b = ref.trace[i];
        ASSERT_EQ(a.when, b.when) << "event " << i;
        ASSERT_EQ(a.instance, b.instance) << "event " << i;
        ASSERT_EQ(a.service, b.service) << "event " << i;
        ASSERT_EQ(a.account, b.account) << "event " << i;
        ASSERT_EQ(a.host, b.host) << "event " << i;
        ASSERT_EQ(a.reason, b.reason) << "event " << i;
    }
    ASSERT_EQ(idx.routed, ref.routed);
    ASSERT_EQ(idx.restarted, ref.restarted);
    ASSERT_EQ(idx.spend.size(), ref.spend.size());
    for (std::size_t i = 0; i < idx.spend.size(); ++i)
        EXPECT_EQ(idx.spend[i], ref.spend[i]) << "spend probe " << i;
    EXPECT_EQ(idx.final_spend_a, ref.final_spend_a);
    EXPECT_EQ(idx.final_spend_b, ref.final_spend_b);
    EXPECT_EQ(idx.instance_count, ref.instance_count);
}

TEST(IndexedOracle, RandomWorkloadMatchesReferenceScan)
{
    for (const std::uint64_t seed : {7ULL, 20260806ULL, 999331ULL}) {
        SCOPED_TRACE(testing::Message() << "seed " << seed);
        const auto script = makeScript(seed ^ 0x5eed, 400);
        const WorkloadLog idx = runWorkload(script, seed, false);
        const WorkloadLog ref = runWorkload(script, seed, true);
        ASSERT_FALSE(idx.trace.empty());
        ASSERT_FALSE(idx.routed.empty());
        ASSERT_FALSE(idx.spend.empty());
        expectIdentical(idx, ref);
    }
}

TEST(IndexedOracle, DynamicPlacementProfileMatchesReferenceScan)
{
    // us-central1 re-jitters the base order every launch, forcing a
    // placement-index rebuild per scale-out; the rebuilt tree must
    // keep agreeing with the scan.
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usCentral1();
    cfg.seed = 42;

    const auto script = makeScript(0xcafe, 250);
    std::vector<Op> launches_heavy = script;
    for (std::size_t i = 0; i < launches_heavy.size(); i += 5)
        launches_heavy[i].kind = Op::Connect;

    WorkloadLog logs[2];
    for (const bool reference : {false, true}) {
        cfg.orchestrator.reference_scan = reference;
        faas::Platform platform(cfg);
        faas::Orchestrator &orch = platform.orchestrator();
        faas::PlacementTrace trace;
        orch.attachTrace(&trace);
        const auto acct = platform.createAccount();
        const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
        WorkloadLog &log = logs[reference ? 1 : 0];
        for (const Op &op : launches_heavy) {
            switch (op.kind) {
            case Op::Connect:
                platform.connect(svc, 10 + op.b % 80);
                break;
            case Op::Advance:
                platform.advance(
                    sim::Duration::fromSecondsF(0.5 + 0.5 * (op.b % 4)));
                break;
            case Op::DisconnectAll:
                platform.disconnectAll(svc);
                break;
            default:
                log.spend.push_back(platform.accountSpendUsd(acct));
                break;
            }
        }
        platform.advance(sim::Duration::minutes(30));
        log.final_spend_a = platform.accountSpendUsd(acct);
        log.instance_count = orch.instanceCount();
        orch.attachTrace(nullptr);
        log.trace = trace.events();
    }
    ASSERT_FALSE(logs[0].trace.empty());
    expectIdentical(logs[0], logs[1]);
}

/**
 * Spend must settle active time exactly once per Active-exit
 * transition: request completion draining in_flight to zero,
 * disconnect, idle reap, and restart all route through the same
 * settle point. Polls straddling each transition must agree with the
 * reference full-table scan to the cent (bit-exact, in fact).
 */
TEST(IndexedOracle, SpendSettlesOnEveryTransition)
{
    std::vector<double> spends[2];
    std::size_t counts[2] = {0, 0};
    for (const bool reference : {false, true}) {
        faas::PlatformConfig cfg;
        cfg.profile = faas::DataCenterProfile::usEast1();
        cfg.seed = 1234;
        cfg.orchestrator.reference_scan = reference;
        faas::Platform platform(cfg);
        faas::Orchestrator &orch = platform.orchestrator();
        const auto acct = platform.createAccount();
        const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
        auto &out = spends[reference ? 1 : 0];
        const auto poll = [&] { out.push_back(platform.accountSpendUsd(acct)); };

        const auto ids = platform.connect(svc, 40);
        poll();

        // Mid-flight: requests still running when polled.
        orch.setMaxConcurrency(svc, 2);
        for (int r = 0; r < 10; ++r)
            orch.routeRequest(svc, sim::Duration::fromSecondsF(1.0));
        poll();
        platform.advance(sim::Duration::fromSecondsF(0.5));
        poll(); // in flight
        platform.advance(sim::Duration::fromSecondsF(0.6));
        poll(); // just completed; instances drained to idle

        // Restart of an idle instance (terminate + replace).
        platform.restartInstance(ids.front());
        poll();

        // Disconnect everything, then let the idle reap expire them.
        platform.disconnectAll(svc);
        poll();
        platform.advance(sim::Duration::minutes(20));
        poll(); // after reap: spend must be frozen
        platform.advance(sim::Duration::minutes(20));
        poll(); // and stay frozen
        counts[reference ? 1 : 0] = orch.instanceCount();
    }
    ASSERT_EQ(spends[0].size(), spends[1].size());
    for (std::size_t i = 0; i < spends[0].size(); ++i)
        EXPECT_EQ(spends[0][i], spends[1][i]) << "poll " << i;
    EXPECT_EQ(counts[0], counts[1]);
    // The frozen-after-reap polls really are equal and non-zero.
    const std::size_t n = spends[0].size();
    EXPECT_GT(spends[0][n - 2], 0.0);
    EXPECT_EQ(spends[0][n - 2], spends[0][n - 1]);
}

} // namespace
} // namespace eaao
