/**
 * @file
 * Tests for the sim-time metrics registry: bucket edge semantics,
 * stable handles, slot-order merging, and the guarantee the parallel
 * harness relies on — the merged JSON is byte-identical for any
 * worker-thread count.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/trial_runner.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace eaao {
namespace {

TEST(ObsCounter, AddsAndDefaultsToOne)
{
    obs::Counter c;
    EXPECT_EQ(c.value, 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value, 42u);
}

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds)
{
    obs::MetricsRegistry reg;
    obs::Histogram *h = reg.histogram("h", {1.0, 2.0, 4.0});
    ASSERT_EQ(h->counts.size(), 4u); // 3 bounds + overflow

    h->observe(0.5); // <= 1.0  -> bucket 0
    h->observe(1.0); // <= 1.0  -> bucket 0 (inclusive)
    h->observe(1.5); // <= 2.0  -> bucket 1
    h->observe(4.0); // <= 4.0  -> bucket 2
    h->observe(9.0); // > 4.0   -> overflow

    EXPECT_EQ(h->counts[0], 2u);
    EXPECT_EQ(h->counts[1], 1u);
    EXPECT_EQ(h->counts[2], 1u);
    EXPECT_EQ(h->counts[3], 1u);
    EXPECT_EQ(h->count, 5u);
    EXPECT_DOUBLE_EQ(h->sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
    EXPECT_DOUBLE_EQ(h->min, 0.5);
    EXPECT_DOUBLE_EQ(h->max, 9.0);
}

TEST(ObsRegistry, HandlesAreStableAcrossRegistrations)
{
    obs::MetricsRegistry reg;
    obs::Counter *c1 = reg.counter("a");
    obs::Histogram *h1 = reg.histogram("h", {1.0, 2.0});

    // Register many more names: node-based storage must not move the
    // earlier handles.
    for (int i = 0; i < 100; ++i)
        reg.counter("filler." + std::to_string(i));

    EXPECT_EQ(reg.counter("a"), c1);
    EXPECT_EQ(reg.histogram("h", {1.0, 2.0}), h1);
    c1->add(7);
    EXPECT_EQ(reg.counters().at("a").value, 7u);
}

TEST(ObsRegistry, MergeAddsCountersAndHistograms)
{
    obs::MetricsRegistry a;
    obs::MetricsRegistry b;
    a.counter("n")->add(2);
    b.counter("n")->add(3);
    b.counter("only_b")->add(1);
    a.histogram("h", {1.0})->observe(0.5);
    b.histogram("h", {1.0})->observe(5.0);

    a.merge(b);
    EXPECT_EQ(a.counters().at("n").value, 5u);
    EXPECT_EQ(a.counters().at("only_b").value, 1u);
    const obs::Histogram &h = a.histograms().at("h");
    EXPECT_EQ(h.count, 2u);
    EXPECT_EQ(h.counts[0], 1u);
    EXPECT_EQ(h.counts[1], 1u);
    EXPECT_DOUBLE_EQ(h.min, 0.5);
    EXPECT_DOUBLE_EQ(h.max, 5.0);
}

TEST(ObsRegistry, JsonIsSortedAndStable)
{
    obs::MetricsRegistry reg;
    reg.counter("zebra")->add(1);
    reg.counter("alpha")->add(2);
    reg.histogram("mid", {0.5, 1.0})->observe(0.25);

    const std::string json = reg.toJson();
    // Map storage renders names in sorted order.
    EXPECT_LT(json.find("\"alpha\""), json.find("\"zebra\""));
    EXPECT_NE(json.find("\"mid\""), std::string::npos);
    EXPECT_EQ(json, reg.toJson());
}

/**
 * Record a deterministic per-trial workload into the slot registry.
 * Every trial writes values derived only from its index.
 */
void
recordTrial(exp::TrialContext &trial)
{
    if (trial.obs.metrics == nullptr)
        return;
    obs::Counter *c = trial.obs.metrics->counter("trial.events");
    obs::Histogram *h =
        trial.obs.metrics->histogram("trial.values", {1.0, 4.0, 16.0});
    for (std::size_t i = 0; i <= trial.index; ++i) {
        c->add(i + 1);
        h->observe(static_cast<double>((trial.index * 7 + i) % 20));
    }
}

std::string
mergedJsonAtThreads(unsigned threads)
{
    constexpr std::size_t kTrials = 12;
    obs::TrialSet set(/*enabled=*/true);
    exp::runTrials(kTrials, /*seed=*/99,
                   [](exp::TrialContext &trial) {
                       recordTrial(trial);
                       return 0;
                   },
                   threads, &set);
    std::vector<obs::MetricsRegistry> parts;
    for (const obs::TrialObs &slot : set.slots())
        parts.push_back(slot.metrics);
    return mergeRegistries(parts).toJson();
}

TEST(ObsRegistry, MergedJsonIsByteIdenticalAcrossThreadCounts)
{
    const std::string t1 = mergedJsonAtThreads(1);
    const std::string t4 = mergedJsonAtThreads(4);
    const std::string t8 = mergedJsonAtThreads(8);
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(t1, t4);
    EXPECT_EQ(t1, t8);
    // Sanity: the workload actually recorded something.
    EXPECT_NE(t1.find("trial.events"), std::string::npos);
    EXPECT_NE(t1.find("trial.values"), std::string::npos);
}

TEST(ObsTrialSet, DisabledSetHandsOutNullObservers)
{
    obs::TrialSet set(/*enabled=*/false);
    set.prepare(4);
    const obs::Observer o = set.observer(2);
    EXPECT_EQ(o.trace, nullptr);
    EXPECT_EQ(o.metrics, nullptr);
    EXPECT_FALSE(o.enabled());
}

} // namespace
} // namespace eaao
