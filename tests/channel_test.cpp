/**
 * @file
 * Unit tests for the covert channels.
 */

#include <gtest/gtest.h>

#include "channel/covert.hpp"

namespace eaao::channel {
namespace {

struct Fixture
{
    faas::PlatformConfig cfg;
    std::unique_ptr<faas::Platform> platform;
    faas::AccountId acct = 0;
    faas::ServiceId svc = 0;

    explicit Fixture(std::uint64_t seed = 1)
    {
        cfg.profile = faas::DataCenterProfile::usEast1();
        cfg.profile.host_count = 330;
        cfg.seed = seed;
        platform = std::make_unique<faas::Platform>(cfg);
        acct = platform->createAccount();
        svc = platform->deployService(acct, faas::ExecEnv::Gen1);
    }

    /** Find indices of two co-located and one separate instance. */
    void
    pickTrio(const std::vector<faas::InstanceId> &ids,
             faas::InstanceId &a, faas::InstanceId &b,
             faas::InstanceId &c) const
    {
        a = b = c = faas::kNoInstance;
        for (std::size_t i = 0; i < ids.size() && c == faas::kNoInstance;
             ++i) {
            for (std::size_t j = i + 1; j < ids.size(); ++j) {
                if (platform->oracleHostOf(ids[i]) ==
                    platform->oracleHostOf(ids[j])) {
                    a = ids[i];
                    b = ids[j];
                } else if (a != faas::kNoInstance) {
                    if (platform->oracleHostOf(ids[j]) !=
                        platform->oracleHostOf(a)) {
                        c = ids[j];
                        break;
                    }
                }
            }
        }
        ASSERT_NE(a, faas::kNoInstance);
        ASSERT_NE(c, faas::kNoInstance);
    }
};

TEST(RngChannel, DetectsCoLocatedPair)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 100);
    faas::InstanceId a, b, c;
    f.pickTrio(ids, a, b, c);

    RngChannel chan(*f.platform);
    const GroupTestResult r = chan.run({a, b}, 2);
    EXPECT_TRUE(r.positive[0]);
    EXPECT_TRUE(r.positive[1]);
}

TEST(RngChannel, RejectsSeparatedPair)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 100);
    faas::InstanceId a, b, c;
    f.pickTrio(ids, a, b, c);

    RngChannel chan(*f.platform);
    const GroupTestResult r = chan.run({a, c}, 2);
    EXPECT_FALSE(r.positive[0]);
    EXPECT_FALSE(r.positive[1]);
}

TEST(RngChannel, GroupTestSeparatesMixedGroup)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 100);
    faas::InstanceId a, b, c;
    f.pickTrio(ids, a, b, c);

    RngChannel chan(*f.platform);
    const GroupTestResult r = chan.run({a, b, c}, 2);
    EXPECT_TRUE(r.positive[0]);
    EXPECT_TRUE(r.positive[1]);
    EXPECT_FALSE(r.positive[2]);
}

TEST(RngChannel, HigherThresholdNeedsMoreCoLocation)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 100);
    faas::InstanceId a, b, c;
    f.pickTrio(ids, a, b, c);

    RngChannel chan(*f.platform);
    // Two co-located instances cannot reach a threshold of 3.
    const GroupTestResult r = chan.run({a, b}, 3);
    EXPECT_FALSE(r.positive[0]);
    EXPECT_FALSE(r.positive[1]);
}

TEST(RngChannel, AdjustableThresholdConfirmsWholeHost)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 800);

    // Collect all instances of one host.
    const hw::HostId host = f.platform->oracleHostOf(ids[0]);
    std::vector<faas::InstanceId> cohort;
    for (const faas::InstanceId id : ids)
        if (f.platform->oracleHostOf(id) == host)
            cohort.push_back(id);
    ASSERT_GE(cohort.size(), 8u);

    RngChannel chan(*f.platform);
    const auto m = static_cast<std::uint32_t>((cohort.size() + 2) / 2);
    const GroupTestResult r = chan.run(cohort, m);
    for (std::size_t i = 0; i < cohort.size(); ++i)
        EXPECT_TRUE(r.positive[i]) << "member " << i;
}

TEST(RngChannel, ConcurrentTestsOnSameHostInterfere)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 100);
    faas::InstanceId a, b, c;
    f.pickTrio(ids, a, b, c);

    RngChannel chan(*f.platform);
    // Group {a} and group {b} are singletons (never positive alone),
    // but run concurrently on the same host they contaminate each
    // other into false positives.
    const auto results = chan.runConcurrent({{a}, {b}}, 2);
    EXPECT_TRUE(results[0].positive[0]);
    EXPECT_TRUE(results[1].positive[0]);
}

TEST(RngChannel, ConcurrentTestsOnDisjointHostsDoNotInterfere)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 100);
    faas::InstanceId a, b, c;
    f.pickTrio(ids, a, b, c);

    RngChannel chan(*f.platform);
    const auto results = chan.runConcurrent({{a, b}, {c}}, 2);
    EXPECT_TRUE(results[0].positive[0]);
    EXPECT_TRUE(results[0].positive[1]);
    EXPECT_FALSE(results[1].positive[0]);
}

TEST(RngChannel, AdvancesVirtualTimePerBatch)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 10);
    RngChannel chan(*f.platform);
    const sim::SimTime before = f.platform->now();
    chan.run({ids[0], ids[1]}, 2);
    EXPECT_EQ(f.platform->now() - before, chan.testDuration());
    EXPECT_EQ(chan.testsRun(), 1u);
}

TEST(RngChannel, BackgroundNoiseRarelyFlipsDecision)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 100);
    faas::InstanceId a, b, c;
    f.pickTrio(ids, a, b, c);

    RngChannel chan(*f.platform);
    int false_positives = 0;
    for (int rep = 0; rep < 50; ++rep) {
        const GroupTestResult r = chan.run({a, c}, 2);
        false_positives += (r.positive[0] || r.positive[1]);
    }
    EXPECT_EQ(false_positives, 0);
}

TEST(MemBusChannel, PairwiseDetectionAndTiming)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 100);
    faas::InstanceId a, b, c;
    f.pickTrio(ids, a, b, c);

    MemBusChannel chan(*f.platform);
    const sim::SimTime before = f.platform->now();
    int hits = 0;
    for (int rep = 0; rep < 20; ++rep)
        hits += chan.testPair(a, b);
    EXPECT_GE(hits, 18);
    int misses = 0;
    for (int rep = 0; rep < 20; ++rep)
        misses += chan.testPair(a, c);
    EXPECT_LE(misses, 3);
    EXPECT_EQ((f.platform->now() - before),
              chan.testDuration() * 40);
    EXPECT_EQ(chan.testsRun(), 40u);
}

} // namespace
} // namespace eaao::channel
