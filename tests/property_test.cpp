/**
 * @file
 * Property-based suites (parameterized gtest): invariants that must
 * hold across rounding precisions, contention thresholds, data-center
 * profiles, container sizes, execution environments, and seeds.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"

namespace eaao {
namespace {

faas::PlatformConfig
smallEast(std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 330;
    cfg.seed = seed;
    return cfg;
}

// ---------------------------------------------------------------------
// Fingerprint quantization invariants across p_boot.
// ---------------------------------------------------------------------

class FingerprintQuantization : public ::testing::TestWithParam<double>
{
};

TEST_P(FingerprintQuantization, BucketMatchesDefinition)
{
    const double p_boot = GetParam();
    core::Gen1Reading r;
    r.cpu_model = "Intel Xeon CPU @ 2.00GHz";
    for (const double tboot :
         {-1234.5678, 0.0, 0.49, 0.51, 987654.321, 5e6}) {
        r.tboot_s = tboot;
        const auto fp = core::quantizeGen1(r, p_boot);
        EXPECT_EQ(fp.boot_bucket,
                  static_cast<std::int64_t>(
                      std::llround(tboot / p_boot)));
        EXPECT_EQ(fp.cpu_model, r.cpu_model);
    }
}

TEST_P(FingerprintQuantization, KeyIsInjectiveOnBuckets)
{
    const double p_boot = GetParam();
    core::Gen1Reading r;
    r.cpu_model = "Intel Xeon CPU @ 2.00GHz";
    std::map<std::int64_t, std::uint64_t> keys;
    for (int k = -50; k <= 50; ++k) {
        r.tboot_s = static_cast<double>(k) * p_boot;
        const auto key =
            core::fingerprintKey(core::quantizeGen1(r, p_boot));
        const auto [it, inserted] = keys.emplace(
            core::quantizeGen1(r, p_boot).boot_bucket, key);
        if (!inserted) {
            EXPECT_EQ(it->second, key);
        }
    }
    // 101 buckets -> 101 distinct keys (no collisions in this range).
    std::set<std::uint64_t> distinct;
    for (const auto &[bucket, key] : keys)
        distinct.insert(key);
    EXPECT_EQ(distinct.size(), keys.size());
}

TEST_P(FingerprintQuantization, PairCountsPartitionAllPairs)
{
    const double p_boot = GetParam();
    faas::Platform p(smallEast(100));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions launch;
    launch.instances = 150;
    launch.p_boot_s = p_boot;
    const auto obs = core::launchAndObserve(p, svc, launch);

    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));
    const auto pc = stats::comparePairs(obs.fp_keys, oracle);
    EXPECT_EQ(pc.tp + pc.fp + pc.fn + pc.tn, 150u * 149u / 2u);
    EXPECT_GE(pc.fmi(), 0.0);
    EXPECT_LE(pc.fmi(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(PBootSweep, FingerprintQuantization,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 3.0,
                                           10.0, 100.0));

// ---------------------------------------------------------------------
// CTest threshold semantics across m.
// ---------------------------------------------------------------------

class CTestThreshold : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CTestThreshold, PositiveIffEnoughCoLocation)
{
    const std::uint32_t m = GetParam();
    faas::Platform p(smallEast(101));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 400);

    // Cohort: all instances of one host.
    const hw::HostId host = p.oracleHostOf(ids[0]);
    std::vector<faas::InstanceId> cohort;
    for (const auto id : ids)
        if (p.oracleHostOf(id) == host)
            cohort.push_back(id);
    ASSERT_GE(cohort.size(), 9u);

    channel::RngChannel chan(p);

    // k >= m members of one host: all positive.
    if (cohort.size() >= m) {
        std::vector<faas::InstanceId> group(cohort.begin(),
                                            cohort.begin() + m);
        const auto result = chan.run(group, m);
        for (std::size_t i = 0; i < group.size(); ++i)
            EXPECT_TRUE(result.positive[i]) << "m=" << m;
    }

    // k = m - 1 members: nobody reaches the threshold.
    if (m >= 2 && cohort.size() >= m - 1 && m > 2) {
        std::vector<faas::InstanceId> group(cohort.begin(),
                                            cohort.begin() + (m - 1));
        const auto result = chan.run(group, m);
        for (std::size_t i = 0; i < group.size(); ++i)
            EXPECT_FALSE(result.positive[i]) << "m=" << m;
    }
}

INSTANTIATE_TEST_SUITE_P(ThresholdSweep, CTestThreshold,
                         ::testing::Values(2u, 3u, 4u, 6u, 9u));

// ---------------------------------------------------------------------
// Scalable verification is exact across environments and seeds.
// ---------------------------------------------------------------------

using VerifyParam = std::tuple<faas::ExecEnv, std::uint64_t>;

class VerificationExactness
    : public ::testing::TestWithParam<VerifyParam>
{
};

TEST_P(VerificationExactness, MatchesOracleClustering)
{
    const auto [env, seed] = GetParam();
    faas::Platform p(smallEast(seed));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, env);
    core::LaunchOptions launch;
    launch.instances = 250;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(p, svc, launch);

    channel::RngChannel chan(p);
    core::VerifyOptions opts;
    opts.no_false_negatives = (env == faas::ExecEnv::Gen2);
    const auto result = core::verifyScalable(
        p, chan, obs.ids, obs.fp_keys, obs.class_keys, opts);

    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));
    const auto pc = stats::comparePairs(result.cluster_of, oracle);
    EXPECT_EQ(pc.fp, 0u) << "env=" << faas::toString(env);
    EXPECT_EQ(pc.fn, 0u) << "env=" << faas::toString(env);
}

INSTANTIATE_TEST_SUITE_P(
    EnvAndSeedSweep, VerificationExactness,
    ::testing::Combine(::testing::Values(faas::ExecEnv::Gen1,
                                         faas::ExecEnv::Gen2),
                       ::testing::Values(201u, 202u, 203u, 204u)));

// ---------------------------------------------------------------------
// Orchestrator invariants across data-center profiles.
// ---------------------------------------------------------------------

class OrchestratorInvariants
    : public ::testing::TestWithParam<std::uint32_t>
{
  protected:
    faas::DataCenterProfile
    profile() const
    {
        switch (GetParam()) {
          case 0:
            return faas::DataCenterProfile::usEast1();
          case 1: {
            auto p = faas::DataCenterProfile::usCentral1();
            p.host_count = 550; // keep the test fast
            return p;
          }
          default:
            return faas::DataCenterProfile::usWest1();
        }
    }
};

TEST_P(OrchestratorInvariants, CapacityAndAccountingHold)
{
    faas::PlatformConfig cfg;
    cfg.profile = profile();
    cfg.seed = 300 + GetParam();
    faas::Platform p(cfg);

    const auto a1 = p.createAccount();
    const auto a2 = p.createAccount();
    const auto s1 = p.deployService(a1, faas::ExecEnv::Gen1);
    const auto s2 = p.deployService(a2, faas::ExecEnv::Gen2,
                                    faas::sizes::kMedium);

    // A mixed op sequence: launches, partial reaping, relaunches.
    p.connect(s1, 400);
    p.connect(s2, 150);
    p.advance(sim::Duration::seconds(45));
    p.disconnectAll(s1);
    p.advance(sim::Duration::minutes(6));
    p.connect(s1, 500);
    p.advance(sim::Duration::minutes(2));
    p.disconnectAll(s2);
    p.advance(sim::Duration::minutes(20));
    p.connect(s2, 80);

    // Invariant 1: per-host vcpu usage within the usable budget.
    std::map<hw::HostId, double> used;
    const auto &orch = p.orchestrator();
    std::map<faas::AccountId, std::uint32_t> live;
    for (std::size_t i = 0; i < orch.instanceCount(); ++i) {
        const auto &inst = orch.instance(i);
        if (inst.state == faas::InstanceState::Terminated)
            continue;
        used[inst.host] += inst.size.vcpus;
        ++live[inst.account];
    }
    for (const auto &[host, vcpus] : used) {
        EXPECT_LE(vcpus,
                  p.fleet().host(host).vcpus() * 0.85 + 1e-9);
    }

    // Invariant 2: account live counts agree with the records.
    EXPECT_EQ(live[a1], orch.account(a1).live_count);
    EXPECT_EQ(live[a2], orch.account(a2).live_count);

    // Invariant 3: no idle instance ever outlives idle_max.
    for (std::size_t i = 0; i < orch.instanceCount(); ++i) {
        const auto &inst = orch.instance(i);
        if (inst.state == faas::InstanceState::Idle) {
            EXPECT_LE((p.now() - inst.state_since).ns(),
                      orch.config().idle_max.ns());
        }
    }

    // Invariant 4: spend is non-negative and grows with activity.
    EXPECT_GT(p.accountSpendUsd(a1), 0.0);
    EXPECT_GT(p.accountSpendUsd(a2), 0.0);
}

TEST_P(OrchestratorInvariants, BillingMatchesActiveSeconds)
{
    faas::PlatformConfig cfg;
    cfg.profile = profile();
    cfg.seed = 310 + GetParam();
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    p.connect(svc, 50);
    p.advance(sim::Duration::seconds(200));
    p.disconnectAll(svc);
    p.advance(sim::Duration::minutes(20)); // all reaped, bill settled

    const auto &orch = p.orchestrator();
    double expected = 0.0;
    const double rate =
        orch.pricing().usdPerActiveSecond(faas::sizes::kSmall);
    for (std::size_t i = 0; i < orch.instanceCount(); ++i)
        expected += orch.instance(i).active_seconds * rate;
    EXPECT_NEAR(p.accountSpendUsd(acct), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Profiles, OrchestratorInvariants,
                         ::testing::Values(0u, 1u, 2u));

// ---------------------------------------------------------------------
// Container sizes: placement and pricing scale sensibly.
// ---------------------------------------------------------------------

class ContainerSizes
    : public ::testing::TestWithParam<faas::ContainerSize>
{
};

TEST_P(ContainerSizes, PlacementAndBillingWork)
{
    const faas::ContainerSize size = GetParam();
    faas::Platform p(smallEast(400));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1, size);
    const auto ids = p.connect(svc, 60);
    EXPECT_EQ(ids.size(), 60u);
    p.advance(sim::Duration::seconds(100));
    p.disconnectAll(svc);

    const double rate =
        faas::PricingModel{}.usdPerActiveSecond(size);
    EXPECT_NEAR(p.accountSpendUsd(acct), 60 * (100.0 + 1.5) * rate,
                1e-9);
}

TEST_P(ContainerSizes, SharesBaseHostsAcrossSizes)
{
    // Observation: different resource specs share the same base hosts.
    const faas::ContainerSize size = GetParam();
    faas::Platform p(smallEast(401));
    const auto acct = p.createAccount();
    const auto small =
        p.deployService(acct, faas::ExecEnv::Gen1, faas::sizes::kSmall);
    const auto sized = p.deployService(acct, faas::ExecEnv::Gen1, size);

    std::set<hw::HostId> small_hosts, sized_hosts;
    for (const auto id : p.connect(small, 200))
        small_hosts.insert(p.oracleHostOf(id));
    p.disconnectAll(small);
    p.advance(sim::Duration::minutes(45));
    for (const auto id : p.connect(sized, 200))
        sized_hosts.insert(p.oracleHostOf(id));

    std::size_t overlap = 0;
    for (const auto h : sized_hosts)
        overlap += small_hosts.count(h);
    EXPECT_GT(overlap, sized_hosts.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    TableOneSizes, ContainerSizes,
    ::testing::Values(faas::sizes::kPico, faas::sizes::kSmall,
                      faas::sizes::kMedium, faas::sizes::kLarge),
    [](const ::testing::TestParamInfo<faas::ContainerSize> &info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace eaao
