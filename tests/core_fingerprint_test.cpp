/**
 * @file
 * Unit tests for fingerprinting, frequency estimation, and tracking.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/fingerprint.hpp"
#include "core/freq_estimator.hpp"
#include "core/tracker.hpp"
#include "faas/platform.hpp"

namespace eaao::core {
namespace {

struct Fixture
{
    faas::PlatformConfig cfg;
    std::unique_ptr<faas::Platform> platform;
    faas::AccountId acct = 0;

    explicit Fixture(std::uint64_t seed = 1,
                     faas::ExecEnv env = faas::ExecEnv::Gen1)
    {
        cfg.profile = faas::DataCenterProfile::usEast1();
        cfg.profile.host_count = 330;
        cfg.seed = seed;
        platform = std::make_unique<faas::Platform>(cfg);
        acct = platform->createAccount();
        svc = platform->deployService(acct, env);
    }

    faas::ServiceId svc = 0;
};

TEST(Gen1Fingerprint, CoLocatedInstancesAgreeAtOneSecond)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 200);

    // Group instances by true host and by fingerprint; within a host,
    // fingerprints at p_boot = 1 s should match.
    std::map<hw::HostId, std::vector<std::uint64_t>> by_host;
    for (const faas::InstanceId id : ids) {
        faas::SandboxView sbx = f.platform->sandbox(id);
        const Gen1Reading reading = readGen1(sbx);
        const Gen1Fingerprint fp = quantizeGen1(reading, 1.0);
        by_host[f.platform->oracleHostOf(id)].push_back(
            fingerprintKey(fp));
    }
    int mismatched_hosts = 0;
    for (const auto &[host, keys] : by_host) {
        for (const auto key : keys)
            mismatched_hosts += (key != keys.front());
    }
    // Rounding-boundary straddling can split a host occasionally; it
    // must be rare.
    EXPECT_LE(mismatched_hosts, 4);
}

TEST(Gen1Fingerprint, DifferentHostsRarelyCollideAtOneSecond)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 400);

    std::map<std::uint64_t, std::set<hw::HostId>> hosts_per_key;
    for (const faas::InstanceId id : ids) {
        faas::SandboxView sbx = f.platform->sandbox(id);
        const Gen1Fingerprint fp = quantizeGen1(readGen1(sbx), 1.0);
        hosts_per_key[fingerprintKey(fp)].insert(
            f.platform->oracleHostOf(id));
    }
    int collisions = 0;
    for (const auto &[key, hosts] : hosts_per_key)
        collisions += (hosts.size() > 1);
    EXPECT_LE(collisions, 1);
}

TEST(Gen1Fingerprint, DerivedBootTimeTracksTrueBootTime)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 50);
    for (const faas::InstanceId id : ids) {
        faas::SandboxView sbx = f.platform->sandbox(id);
        const Gen1Reading reading = readGen1(sbx);
        const double true_boot = f.platform->fleet()
                                     .host(f.platform->oracleHostOf(id))
                                     .tsc()
                                     .bootTime()
                                     .secondsF();
        // Label error of up to ~MHz over up to ~90 days of uptime can
        // shift the derived value by a few thousand seconds; typical
        // hosts are within seconds. Loose sanity bound:
        EXPECT_NEAR(reading.tboot_s, true_boot, 2e4);
    }
}

TEST(Gen1Fingerprint, QuantizationRoundsHalfAway)
{
    Gen1Reading r;
    r.cpu_model = "Intel Xeon CPU @ 2.00GHz";
    r.tboot_s = 1234.6;
    EXPECT_EQ(quantizeGen1(r, 1.0).boot_bucket, 1235);
    r.tboot_s = 1234.4;
    EXPECT_EQ(quantizeGen1(r, 1.0).boot_bucket, 1234);
    r.tboot_s = -7.5;
    EXPECT_EQ(quantizeGen1(r, 1.0).boot_bucket, -8);
    r.tboot_s = 1234.6;
    EXPECT_EQ(quantizeGen1(r, 0.1).boot_bucket, 12346);
}

TEST(Gen1Fingerprint, KeyIncludesCpuModel)
{
    Gen1Fingerprint a{"Intel Xeon CPU @ 2.00GHz", 42};
    Gen1Fingerprint b{"Intel Xeon CPU @ 2.20GHz", 42};
    Gen1Fingerprint c{"Intel Xeon CPU @ 2.00GHz", 43};
    EXPECT_NE(fingerprintKey(a), fingerprintKey(b));
    EXPECT_NE(fingerprintKey(a), fingerprintKey(c));
    EXPECT_EQ(fingerprintKey(a), fingerprintKey(a));
}

TEST(Gen2Fingerprint, MatchesHostRefinedFrequencyExactly)
{
    Fixture f(3, faas::ExecEnv::Gen2);
    const auto ids = f.platform->connect(f.svc, 100);
    std::map<hw::HostId, std::int64_t> khz_by_host;
    for (const faas::InstanceId id : ids) {
        faas::SandboxView sbx = f.platform->sandbox(id);
        const Gen2Fingerprint fp = readGen2(sbx);
        const hw::HostId host = f.platform->oracleHostOf(id);
        const auto expected = static_cast<std::int64_t>(std::llround(
            f.platform->fleet().host(host).tsc().refinedHz() / 1000.0));
        EXPECT_EQ(fp.refined_khz, expected);
        // No false negatives, ever: same host, same fingerprint.
        const auto [it, inserted] =
            khz_by_host.emplace(host, fp.refined_khz);
        if (!inserted) {
            EXPECT_EQ(it->second, fp.refined_khz);
        }
    }
}

TEST(FreqEstimator, ReportedMatchesLabel)
{
    Fixture f;
    const auto ids = f.platform->connect(f.svc, 10);
    faas::SandboxView sbx = f.platform->sandbox(ids[0]);
    const double reported = reportedFrequencyHz(sbx);
    const double nominal = f.platform->fleet()
                               .host(f.platform->oracleHostOf(ids[0]))
                               .tsc()
                               .nominalHz();
    EXPECT_DOUBLE_EQ(reported, nominal);
}

TEST(FreqEstimator, MeasuredIsStableOnCleanHostsOnly)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 330;
    cfg.timing.noisy_timer_fraction = 1.0; // force all hosts noisy
    cfg.seed = 4;
    faas::Platform noisy(cfg);
    const auto acct = noisy.createAccount();
    const auto svc = noisy.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = noisy.connect(svc, 5);
    faas::SandboxView sbx = noisy.sandbox(ids[0]);
    const FrequencyEstimate est = measuredFrequencyHz(sbx);
    EXPECT_FALSE(est.stable());
    EXPECT_GT(est.stddev_hz, 1e3);

    faas::PlatformConfig clean_cfg;
    clean_cfg.profile = faas::DataCenterProfile::usEast1();
    clean_cfg.profile.host_count = 330;
    clean_cfg.timing.noisy_timer_fraction = 0.0;
    clean_cfg.seed = 6;
    faas::Platform clean(clean_cfg);
    const auto acct2 = clean.createAccount();
    const auto svc2 = clean.deployService(acct2, faas::ExecEnv::Gen1);
    const auto ids2 = clean.connect(svc2, 5);
    faas::SandboxView sbx2 = clean.sandbox(ids2[0]);
    const FrequencyEstimate est2 = measuredFrequencyHz(sbx2);
    EXPECT_TRUE(est2.stable());
    EXPECT_LT(est2.stddev_hz, 200.0);
    const double true_hz = clean.fleet()
                               .host(clean.oracleHostOf(ids2[0]))
                               .tsc()
                               .trueHz();
    EXPECT_NEAR(est2.mean_hz, true_hz, 100.0);
}

TEST(Tracker, DriftIsLinearWithExpectedSlope)
{
    // Synthetic history: T_boot drifting by eps/f per second (Eq 4.2).
    const double eps = 1500.0, f = 2.0e9;
    const double slope = eps / f;
    FingerprintHistory history;
    for (int h = 0; h <= 72; ++h) {
        const double x = h * 3600.0;
        history.add(sim::SimTime::fromSecondsF(x), 1000.0 + slope * x);
    }
    const stats::LinearFit fit = history.fitDrift();
    EXPECT_NEAR(fit.slope, slope, 1e-12);
    EXPECT_GT(std::fabs(fit.r_value), 0.9997);
    EXPECT_EQ(history.size(), 73u);
    EXPECT_EQ(history.span(), sim::Duration::hours(72));
}

TEST(Tracker, ExpirationDistanceOverSlope)
{
    // T_boot = 1000.2 at the last point, drifting up at 1e-5 /s with
    // p_boot = 1: the 1000-bucket boundary sits at 1000.5, so
    // expiration = 0.3 / 1e-5 = 30000 s.
    FingerprintHistory history;
    for (int i = 0; i <= 10; ++i) {
        const double x = i * 1000.0;
        history.add(sim::SimTime::fromSecondsF(x),
                    1000.1 + 1e-5 * x);
    }
    const auto exp_s = history.expirationSeconds(1.0);
    ASSERT_TRUE(exp_s.has_value());
    EXPECT_NEAR(*exp_s, 0.3 / 1e-5, 50.0);
}

TEST(Tracker, DownwardDriftUsesLowerBoundary)
{
    FingerprintHistory history;
    for (int i = 0; i <= 10; ++i) {
        const double x = i * 1000.0;
        history.add(sim::SimTime::fromSecondsF(x), 1000.3 - 1e-5 * x);
    }
    const auto exp_s = history.expirationSeconds(1.0);
    ASSERT_TRUE(exp_s.has_value());
    // Final fitted value 1000.2; lower boundary at 999.5 => 0.7 / 1e-5.
    EXPECT_NEAR(*exp_s, 0.7 / 1e-5, 50.0);
}

TEST(Tracker, FlatHistoryNeverExpires)
{
    FingerprintHistory history;
    for (int i = 0; i <= 5; ++i)
        history.add(sim::SimTime::fromSecondsF(i * 100.0), 500.0);
    EXPECT_FALSE(history.expirationSeconds(1.0).has_value());
}

TEST(Tracker, RealPlatformHistoriesAreLinear)
{
    // Track one long-running instance hourly for three days; the
    // derived T_boot must drift linearly (paper: min |r| = 0.9997).
    Fixture f(7);
    const auto ids = f.platform->connect(f.svc, 8);
    std::vector<FingerprintHistory> histories(ids.size());
    for (int hour = 0; hour <= 72; ++hour) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            faas::SandboxView sbx = f.platform->sandbox(ids[i]);
            const Gen1Reading r = readGen1Median(sbx, 15);
            histories[i].add(f.platform->now(), r.tboot_s);
        }
        f.platform->advance(sim::Duration::hours(1));
    }
    for (const auto &history : histories) {
        const stats::LinearFit fit = history.fitDrift();
        EXPECT_GT(std::fabs(fit.r_value), 0.999);
    }
}

} // namespace
} // namespace eaao::core
