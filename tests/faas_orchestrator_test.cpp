/**
 * @file
 * Unit tests for placement policy: base hosts, spreading, helper hosts,
 * hotness, shard behaviour.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "faas/platform.hpp"

namespace eaao::faas {
namespace {

PlatformConfig
eastConfig(std::uint64_t seed = 1)
{
    PlatformConfig cfg;
    cfg.profile = DataCenterProfile::usEast1();
    cfg.seed = seed;
    return cfg;
}

std::set<hw::HostId>
hostsOf(const Platform &p, const std::vector<InstanceId> &ids)
{
    std::set<hw::HostId> hosts;
    for (const InstanceId id : ids)
        hosts.insert(p.oracleHostOf(id));
    return hosts;
}

TEST(Orchestrator, ColdLaunchSpreadsNearUniformly)
{
    // Observation 1: 800 instances land on ~75 hosts, 10-11 each.
    Platform p(eastConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    const auto ids = p.connect(svc, 800);

    std::map<hw::HostId, int> per_host;
    for (const InstanceId id : ids)
        ++per_host[p.oracleHostOf(id)];

    EXPECT_NEAR(static_cast<double>(per_host.size()), 75.0, 4.0);
    int majority = 0;
    for (const auto &[host, count] : per_host) {
        EXPECT_GE(count, 8);
        EXPECT_LE(count, 13);
        majority += (count == 10 || count == 11);
    }
    EXPECT_GT(majority, static_cast<int>(per_host.size() * 0.6));
}

TEST(Orchestrator, BaseHostsStayInHomeShard)
{
    Platform p(eastConfig());
    const AccountId acct = p.createAccount(2);
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    const auto ids = p.connect(svc, 400);
    for (const InstanceId id : ids)
        EXPECT_EQ(p.fleet().shardOf(p.oracleHostOf(id)), 2u);
}

TEST(Orchestrator, RepeatColdLaunchesReuseBaseHosts)
{
    // Observation 3: cold launches of the same account overlap heavily.
    Platform p(eastConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);

    const auto first = hostsOf(p, p.connect(svc, 800));
    p.disconnectAll(svc);
    p.advance(sim::Duration::minutes(45)); // cool down fully

    const auto second = hostsOf(p, p.connect(svc, 800));
    std::set<hw::HostId> overlap;
    for (const hw::HostId h : second)
        if (first.count(h))
            overlap.insert(h);
    EXPECT_GT(overlap.size(), first.size() * 9 / 10);
}

TEST(Orchestrator, DifferentServicesSameAccountShareBaseHosts)
{
    Platform p(eastConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc1 = p.deployService(acct, ExecEnv::Gen1);
    const auto first = hostsOf(p, p.connect(svc1, 800));
    p.disconnectAll(svc1);
    p.advance(sim::Duration::minutes(45));

    const ServiceId svc2 = p.deployService(acct, ExecEnv::Gen1);
    const auto second = hostsOf(p, p.connect(svc2, 800));
    std::size_t overlap = 0;
    for (const hw::HostId h : second)
        overlap += first.count(h);
    EXPECT_GT(overlap, first.size() * 9 / 10);
}

TEST(Orchestrator, DifferentAccountsUseDifferentBaseHosts)
{
    // Observation 4 (accounts hash to different shards here).
    Platform p(eastConfig());
    const AccountId a1 = p.createAccount(0);
    const AccountId a2 = p.createAccount(3);
    const ServiceId s1 = p.deployService(a1, ExecEnv::Gen1);
    const ServiceId s2 = p.deployService(a2, ExecEnv::Gen1);
    const auto h1 = hostsOf(p, p.connect(s1, 800));
    const auto h2 = hostsOf(p, p.connect(s2, 800));
    for (const hw::HostId h : h2)
        EXPECT_EQ(h1.count(h), 0u);
}

TEST(Orchestrator, HotServiceSpillsOntoHelperHosts)
{
    // Observation 5: repeated launches at short intervals expand the
    // footprint beyond the base hosts.
    Platform p(eastConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);

    const auto base = hostsOf(p, p.connect(svc, 800));
    p.disconnectAll(svc);

    std::set<hw::HostId> cumulative = base;
    std::size_t final_footprint = 0;
    for (int launch = 1; launch < 6; ++launch) {
        p.advance(sim::Duration::minutes(10));
        const auto hosts = hostsOf(p, p.connect(svc, 800));
        p.disconnectAll(svc);
        cumulative.insert(hosts.begin(), hosts.end());
        final_footprint = hosts.size();
    }

    // Footprint expands well beyond the ~75 base hosts and saturates
    // around base + 3 * helper_chunk (~270 in us-east1).
    EXPECT_GT(final_footprint, 150u);
    EXPECT_GT(cumulative.size(), 220u);
    EXPECT_LT(cumulative.size(), 320u);
}

TEST(Orchestrator, VeryShortIntervalAddsFewHelperHosts)
{
    // The 2-minute control of Experiment 4: almost no instances are
    // reaped between launches, so almost no new placements happen.
    Platform p(eastConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);

    std::set<hw::HostId> cumulative = hostsOf(p, p.connect(svc, 800));
    const std::size_t base_count = cumulative.size();
    p.disconnectAll(svc);
    for (int launch = 1; launch < 6; ++launch) {
        p.advance(sim::Duration::minutes(2));
        const auto hosts = hostsOf(p, p.connect(svc, 800));
        p.disconnectAll(svc);
        cumulative.insert(hosts.begin(), hosts.end());
    }
    EXPECT_LT(cumulative.size() - base_count, 40u);
}

TEST(Orchestrator, LongIntervalLaunchesStayCold)
{
    // Experiment 2: 45-minute gaps leave the demand window empty, so
    // every launch lands on base hosts only.
    Platform p(eastConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);

    std::set<hw::HostId> cumulative;
    for (int launch = 0; launch < 4; ++launch) {
        const auto hosts = hostsOf(p, p.connect(svc, 800));
        p.disconnectAll(svc);
        cumulative.insert(hosts.begin(), hosts.end());
        p.advance(sim::Duration::minutes(45));
    }
    EXPECT_LT(cumulative.size(), 100u);
}

TEST(Orchestrator, HelperSetsOfServicesOverlapButDiffer)
{
    // Observation 6.
    Platform p(eastConfig());
    const AccountId acct = p.createAccount();

    auto helper_hosts_of = [&p, acct](ServiceId svc,
                                      std::set<hw::HostId> &base_out) {
        base_out = hostsOf(p, p.connect(svc, 800));
        p.disconnectAll(svc);
        std::set<hw::HostId> all = base_out;
        for (int launch = 1; launch < 6; ++launch) {
            p.advance(sim::Duration::minutes(10));
            const auto hosts = hostsOf(p, p.connect(svc, 800));
            p.disconnectAll(svc);
            all.insert(hosts.begin(), hosts.end());
        }
        std::set<hw::HostId> helpers;
        for (const hw::HostId h : all)
            if (!base_out.count(h))
                helpers.insert(h);
        p.advance(sim::Duration::minutes(45)); // cool down
        return helpers;
    };

    std::set<hw::HostId> base1, base2;
    const ServiceId s1 = p.deployService(acct, ExecEnv::Gen1);
    const auto helpers1 = helper_hosts_of(s1, base1);
    const ServiceId s2 = p.deployService(acct, ExecEnv::Gen1);
    const auto helpers2 = helper_hosts_of(s2, base2);

    std::size_t overlap = 0;
    for (const hw::HostId h : helpers2)
        overlap += helpers1.count(h);
    EXPECT_GT(overlap, 0u);                     // they overlap...
    EXPECT_LT(overlap, helpers2.size());        // ...but differ
    EXPECT_GT(helpers2.size() - overlap, 10u);  // meaningfully
}

TEST(Orchestrator, IdleTerminationFollowsObservedDecay)
{
    // Figure 6: hold for ~2 minutes, practically all gone by ~13 min.
    Platform p(eastConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    const auto ids = p.connect(svc, 800);
    p.disconnectAll(svc);

    auto idle_count = [&] {
        int n = 0;
        for (const InstanceId id : ids)
            n += (p.instanceInfo(id).state == InstanceState::Idle);
        return n;
    };

    p.advance(sim::Duration::seconds(110));
    EXPECT_EQ(idle_count(), 800);
    p.advance(sim::Duration::seconds(190)); // t = 5 min
    const int at_5min = idle_count();
    EXPECT_LT(at_5min, 700);
    EXPECT_GT(at_5min, 100);
    p.advance(sim::Duration::minutes(9)); // t = 14 min
    EXPECT_LT(idle_count(), 8);
    p.advance(sim::Duration::minutes(2)); // t = 16 min > idle_max
    EXPECT_EQ(idle_count(), 0);
}

TEST(Orchestrator, NaiveBigLaunchPacksHomeShard)
{
    // Strategy 1: 4800 cold instances fit inside the home shard
    // (packed more densely), never spilling across shards.
    Platform p(eastConfig());
    const AccountId acct = p.createAccount(1);
    std::set<hw::HostId> hosts;
    for (int s = 0; s < 6; ++s) {
        const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
        const auto ids = p.connect(svc, 800);
        const auto h = hostsOf(p, ids);
        hosts.insert(h.begin(), h.end());
    }
    for (const hw::HostId h : hosts)
        EXPECT_EQ(p.fleet().shardOf(h), 1u);
}

TEST(Orchestrator, CentralProfileIsDynamicAcrossLaunches)
{
    PlatformConfig cfg;
    cfg.profile = DataCenterProfile::usCentral1();
    cfg.profile.host_count = 550; // shrink for test speed
    cfg.seed = 5;
    Platform p(cfg);
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);

    const auto first = hostsOf(p, p.connect(svc, 400));
    p.disconnectAll(svc);
    p.advance(sim::Duration::minutes(45));
    const auto second = hostsOf(p, p.connect(svc, 400));

    std::size_t overlap = 0;
    for (const hw::HostId h : second)
        overlap += first.count(h);
    // Dynamic placement: meaningful churn between cold launches.
    EXPECT_LT(overlap, first.size());
    EXPECT_GT(first.size() - overlap, 3u);
}

TEST(Orchestrator, Gen2SharesHostsWithGen1)
{
    Platform p(eastConfig());
    const AccountId acct = p.createAccount();
    const ServiceId g1 = p.deployService(acct, ExecEnv::Gen1);
    const ServiceId g2 = p.deployService(acct, ExecEnv::Gen2);
    const auto h1 = hostsOf(p, p.connect(g1, 300));
    const auto h2 = hostsOf(p, p.connect(g2, 300));
    std::size_t overlap = 0;
    for (const hw::HostId h : h2)
        overlap += h1.count(h);
    EXPECT_GT(overlap, 0u);
}

} // namespace
} // namespace eaao::faas
