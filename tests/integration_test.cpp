/**
 * @file
 * End-to-end integration tests: fingerprint accuracy against covert-
 * channel ground truth, expiration, and the full attack pipeline —
 * miniature versions of the paper's headline experiments.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/fingerprint.hpp"
#include "core/strategy.hpp"
#include "core/tracker.hpp"
#include "core/verify.hpp"
#include "stats/clustering.hpp"

namespace eaao {
namespace {

faas::PlatformConfig
config(const faas::DataCenterProfile &profile, std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.seed = seed;
    return cfg;
}

TEST(Integration, FingerprintAccuracySweetSpot)
{
    // Miniature Figure 4: with p_boot = 1 s, fingerprints should be
    // near-perfect against the covert-channel ground truth; with huge
    // or tiny p_boot they degrade on precision/recall respectively.
    faas::Platform p(config(faas::DataCenterProfile::usEast1(), 21));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);

    core::LaunchOptions opts;
    opts.instances = 400;
    opts.disconnect_after = false;
    const core::LaunchObservation obs =
        core::launchAndObserve(p, svc, opts);

    channel::RngChannel chan(p);
    const core::VerifyResult truth_clusters = core::verifyScalable(
        p, chan, obs.ids, obs.fp_keys, obs.class_keys);

    // The channel-derived ground truth must equal the oracle.
    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));
    const auto vs_oracle =
        stats::comparePairs(truth_clusters.cluster_of, oracle);
    EXPECT_EQ(vs_oracle.fp + vs_oracle.fn, 0u);

    auto fmi_at = [&](double p_boot) {
        std::vector<std::uint64_t> keys;
        for (const auto &reading : obs.readings) {
            keys.push_back(core::fingerprintKey(
                core::quantizeGen1(reading, p_boot)));
        }
        return stats::comparePairs(keys, oracle);
    };

    const auto sweet = fmi_at(1.0);
    EXPECT_GT(sweet.fmi(), 0.99);

    const auto tiny = fmi_at(1e-4);
    EXPECT_LT(tiny.recall(), 0.9);

    const auto huge = fmi_at(1e5);
    EXPECT_LT(huge.precision(), 0.9);
}

TEST(Integration, Gen2FingerprintsHaveNoFalseNegatives)
{
    faas::Platform p(config(faas::DataCenterProfile::usEast1(), 22));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen2);

    core::LaunchOptions opts;
    opts.instances = 400;
    opts.disconnect_after = false;
    const core::LaunchObservation obs =
        core::launchAndObserve(p, svc, opts);

    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));

    const auto pc = stats::comparePairs(obs.fp_keys, oracle);
    EXPECT_EQ(pc.fn, 0u);          // structurally impossible
    EXPECT_LT(pc.precision(), 1.0); // collisions exist (paper: ~0.48)
    EXPECT_GT(pc.precision(), 0.2);
}

TEST(Integration, ExpirationMatchesLabelErrorPrediction)
{
    // Track instances for two days and compare the estimated
    // expiration against the analytic value p_boot * f / |eps|.
    faas::Platform p(config(faas::DataCenterProfile::usEast1(), 23));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 5);

    std::vector<core::FingerprintHistory> histories(ids.size());
    for (int hour = 0; hour <= 48; ++hour) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            faas::SandboxView sbx = p.sandbox(ids[i]);
            histories[i].add(p.now(),
                             core::readGen1Median(sbx, 15).tboot_s);
        }
        p.advance(sim::Duration::hours(1));
    }

    for (std::size_t i = 0; i < ids.size(); ++i) {
        const auto &tsc = p.fleet().host(p.oracleHostOf(ids[i])).tsc();
        const double eps = tsc.trueHz() - tsc.nominalHz();
        const double drift_rate = eps / tsc.nominalHz();
        const stats::LinearFit fit = histories[i].fitDrift();
        // Slope of derived T_boot vs wall time = -eps/f_reported
        // (Eq. 4.2 with our sign convention).
        EXPECT_NEAR(fit.slope, -drift_rate,
                    std::max(2e-8, std::fabs(drift_rate) * 0.05));
    }
}

TEST(Integration, FullAttackPipeline)
{
    // Optimized campaign in us-west1, then covert-channel-verified
    // coverage of a victim in the other shard: the paper's headline
    // result (near-100% coverage in small DCs).
    faas::Platform p(config(faas::DataCenterProfile::usWest1(), 24));
    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(1);

    core::CampaignConfig cfg;
    cfg.services = 4;
    const core::CampaignResult attack =
        core::runOptimizedCampaign(p, attacker, cfg);

    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    core::LaunchOptions vopts;
    vopts.instances = 100;
    vopts.disconnect_after = false;
    const core::LaunchObservation vobs =
        core::launchAndObserve(p, vsvc, vopts);

    channel::RngChannel chan(p);
    const core::CoverageResult cov = core::measureCoverageViaChannel(
        p, chan, attack, vobs.ids, vobs.fp_keys, vobs.class_keys);

    EXPECT_GT(cov.coverage(), 0.9);
    // At least one victim instance is co-located: attack succeeds.
    EXPECT_GT(cov.covered_instances, 0u);
}

TEST(Integration, ApparentHostsApproximateTrueHosts)
{
    // Fingerprint-derived "apparent hosts" should track the oracle
    // host count closely (Gen 1 fingerprints are near-perfect).
    faas::Platform p(config(faas::DataCenterProfile::usEast1(), 25));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions opts;
    opts.instances = 800;
    const core::LaunchObservation obs =
        core::launchAndObserve(p, svc, opts);

    std::set<hw::HostId> true_hosts;
    for (const auto id : obs.ids)
        true_hosts.insert(p.oracleHostOf(id));
    const auto apparent = obs.apparentHosts();
    EXPECT_NEAR(static_cast<double>(apparent.size()),
                static_cast<double>(true_hosts.size()), 3.0);
}

} // namespace
} // namespace eaao
