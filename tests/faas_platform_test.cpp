/**
 * @file
 * Unit tests for the platform facade and sandbox views.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "faas/platform.hpp"
#include "hw/cpu_sku.hpp"

namespace eaao::faas {
namespace {

PlatformConfig
smallConfig(std::uint64_t seed = 1)
{
    PlatformConfig cfg;
    cfg.profile = DataCenterProfile::usEast1();
    cfg.profile.host_count = 330;
    cfg.profile.shard_size = 110;
    cfg.seed = seed;
    return cfg;
}

TEST(Platform, ConnectYieldsRequestedConcurrency)
{
    Platform p(smallConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    const auto ids = p.connect(svc, 50);
    EXPECT_EQ(ids.size(), 50u);
    for (const InstanceId id : ids) {
        EXPECT_EQ(p.instanceInfo(id).state, InstanceState::Active);
        EXPECT_EQ(p.instanceInfo(id).account, acct);
    }
}

TEST(Platform, DisconnectMakesInstancesIdleThenReaped)
{
    Platform p(smallConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    const auto ids = p.connect(svc, 20);
    p.disconnectAll(svc);
    for (const InstanceId id : ids)
        EXPECT_EQ(p.instanceInfo(id).state, InstanceState::Idle);

    // Nothing is reaped during the two-minute hold...
    p.advance(sim::Duration::seconds(115));
    for (const InstanceId id : ids)
        EXPECT_EQ(p.instanceInfo(id).state, InstanceState::Idle);

    // ...and everything is gone by the documented 15-minute maximum.
    p.advance(sim::Duration::minutes(15));
    for (const InstanceId id : ids) {
        EXPECT_EQ(p.instanceInfo(id).state, InstanceState::Terminated);
        ASSERT_TRUE(p.terminatedAt(id).has_value());
    }
}

TEST(Platform, ReconnectReusesIdleInstances)
{
    Platform p(smallConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    const auto first = p.connect(svc, 30);
    p.disconnectAll(svc);
    p.advance(sim::Duration::seconds(30));
    const auto second = p.connect(svc, 30);
    const std::set<InstanceId> a(first.begin(), first.end());
    int reused = 0;
    for (const InstanceId id : second)
        reused += a.count(id);
    // Within the hold window every instance survives and is reused.
    EXPECT_EQ(reused, 30);
}

TEST(Platform, BillingChargesActiveSecondsOnly)
{
    Platform p(smallConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    p.connect(svc, 10);
    p.advance(sim::Duration::seconds(100));
    p.disconnectAll(svc);
    const double spend_at_disconnect = p.accountSpendUsd(acct);
    // 10 Small instances, 100 s active + 1.5 s billable startup.
    const double rate = PricingModel{}.usdPerActiveSecond(sizes::kSmall);
    EXPECT_NEAR(spend_at_disconnect, 10 * 101.5 * rate, 1e-9);

    // Idle time is free.
    p.advance(sim::Duration::minutes(30));
    EXPECT_NEAR(p.accountSpendUsd(acct), spend_at_disconnect, 1e-12);
}

TEST(Platform, Gen1SandboxRevealsHostModelAndTsc)
{
    Platform p(smallConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    const auto ids = p.connect(svc, 5);
    for (const InstanceId id : ids) {
        SandboxView sbx = p.sandbox(id);
        EXPECT_EQ(sbx.env(), ExecEnv::Gen1);
        const std::string model = sbx.cpuModelName();
        EXPECT_EQ(model, p.fleet().host(p.oracleHostOf(id)).modelName());
        EXPECT_GT(hw::SkuCatalog::labeledFrequencyHz(model), 0.0);

        // The TSC reflects the host's uptime (hosts booted >= 1 h ago).
        const TimestampSample ts = sbx.readTimestamp();
        const double uptime_s =
            static_cast<double>(ts.tsc) /
            p.fleet().host(p.oracleHostOf(id)).tsc().trueHz();
        EXPECT_GT(uptime_s, 3000.0);
    }
}

TEST(Platform, Gen2SandboxHidesModelAndOffsetsTsc)
{
    Platform p(smallConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen2);
    const auto ids = p.connect(svc, 5);
    p.advance(sim::Duration::seconds(10));
    for (const InstanceId id : ids) {
        SandboxView sbx = p.sandbox(id);
        EXPECT_EQ(sbx.cpuModelName(), "Virtual CPU");
        // Offset TSC: roughly 10 s of guest uptime, not days of host
        // uptime.
        const TimestampSample ts = sbx.readTimestamp();
        const double apparent_uptime =
            static_cast<double>(ts.tsc) / 2.9e9;
        EXPECT_LT(apparent_uptime, 60.0);

        // The refined host frequency is 1 kHz-granular and host-bound.
        const double refined = sbx.refinedTscFrequencyHz();
        EXPECT_DOUBLE_EQ(std::fmod(refined, 1000.0), 0.0);
        EXPECT_DOUBLE_EQ(
            refined,
            p.fleet().host(p.oracleHostOf(id)).tsc().refinedHz());
    }
}

TEST(Platform, RestartInstanceReplacesAndTerminates)
{
    Platform p(smallConfig());
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    const auto ids = p.connect(svc, 10);
    const InstanceId replacement = p.restartInstance(ids[0]);
    EXPECT_NE(replacement, ids[0]);
    EXPECT_EQ(p.instanceInfo(ids[0]).state, InstanceState::Terminated);
    EXPECT_EQ(p.instanceInfo(replacement).state, InstanceState::Active);
}

TEST(Platform, MeasuredFrequencyTightOnCleanHosts)
{
    PlatformConfig cfg = smallConfig();
    cfg.timing.noisy_timer_fraction = 0.0;
    Platform p(cfg);
    const AccountId acct = p.createAccount();
    const ServiceId svc = p.deployService(acct, ExecEnv::Gen1);
    const auto ids = p.connect(svc, 3);
    SandboxView sbx = p.sandbox(ids[0]);
    const auto samples =
        sbx.measureTscFrequency(sim::Duration::millis(100), 10);
    ASSERT_EQ(samples.size(), 10u);
    const double true_hz =
        p.fleet().host(p.oracleHostOf(ids[0])).tsc().trueHz();
    for (const double s : samples)
        EXPECT_NEAR(s, true_hz, 200.0);
}

TEST(Platform, DeterministicAcrossIdenticalSeeds)
{
    Platform a(smallConfig(77)), b(smallConfig(77));
    const AccountId acct_a = a.createAccount();
    const AccountId acct_b = b.createAccount();
    const ServiceId svc_a = a.deployService(acct_a, ExecEnv::Gen1);
    const ServiceId svc_b = b.deployService(acct_b, ExecEnv::Gen1);
    const auto ids_a = a.connect(svc_a, 40);
    const auto ids_b = b.connect(svc_b, 40);
    ASSERT_EQ(ids_a.size(), ids_b.size());
    for (std::size_t i = 0; i < ids_a.size(); ++i)
        EXPECT_EQ(a.oracleHostOf(ids_a[i]), b.oracleHostOf(ids_b[i]));
}

} // namespace
} // namespace eaao::faas
