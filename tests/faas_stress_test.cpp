/**
 * @file
 * Deterministic fuzz/stress test: random operation sequences against
 * the orchestrator with full invariant checking after every step.
 *
 * Operations: connect to a random level, disconnect, route request
 * bursts, restart instances, advance time by random amounts, deploy
 * extra services/accounts. Invariants: capacity budgets, list/record
 * agreement, billing consistency, no immortal idle instances.
 */

#include <gtest/gtest.h>

#include <map>

#include "faas/platform.hpp"
#include "faas/workload.hpp"
#include "sim/rng.hpp"

namespace eaao::faas {
namespace {

class StressFixture
{
  public:
    explicit StressFixture(std::uint64_t seed) : rng_(seed)
    {
        PlatformConfig cfg;
        cfg.profile = DataCenterProfile::usEast1();
        cfg.profile.host_count = 330;
        cfg.seed = seed;
        platform_ = std::make_unique<Platform>(cfg);
        accounts_.push_back(platform_->createAccount());
        services_.push_back(platform_->deployService(
            accounts_[0], ExecEnv::Gen1));
    }

    void
    step()
    {
        switch (rng_.uniformInt(std::uint64_t{8})) {
          case 0: { // scale a random service
            const auto svc = pickService();
            platform_->connect(
                svc, static_cast<std::uint32_t>(
                         rng_.uniformInt(std::int64_t{1},
                                         std::int64_t{300})));
            break;
          }
          case 1:
            platform_->disconnectAll(pickService());
            break;
          case 2: { // request burst
            const auto svc = pickService();
            const auto n = rng_.uniformInt(std::int64_t{1},
                                           std::int64_t{40});
            for (std::int64_t i = 0; i < n; ++i) {
                platform_->orchestrator().routeRequest(
                    svc, sim::Duration::millis(
                             rng_.uniformInt(std::int64_t{10},
                                             std::int64_t{5000})));
            }
            break;
          }
          case 3: { // restart a live instance, if any
            const auto &orch = platform_->orchestrator();
            for (int tries = 0; tries < 10; ++tries) {
                if (orch.instanceCount() == 0)
                    break;
                const auto id = rng_.uniformInt(orch.instanceCount());
                if (orch.instance(id).state !=
                    InstanceState::Terminated) {
                    platform_->restartInstance(id);
                    break;
                }
            }
            break;
          }
          case 4: // short advance
            platform_->advance(sim::Duration::seconds(
                rng_.uniformInt(std::int64_t{1}, std::int64_t{90})));
            break;
          case 5: // long advance (reaping kicks in)
            platform_->advance(sim::Duration::minutes(
                rng_.uniformInt(std::int64_t{2}, std::int64_t{40})));
            break;
          case 6: // new service
            if (services_.size() < 8) {
                services_.push_back(platform_->deployService(
                    pickAccount(),
                    rng_.bernoulli(0.3) ? ExecEnv::Gen2 : ExecEnv::Gen1,
                    rng_.bernoulli(0.3) ? sizes::kMedium
                                        : sizes::kSmall));
            }
            break;
          default: // new account
            if (accounts_.size() < 4)
                accounts_.push_back(platform_->createAccount());
            break;
        }
    }

    void
    checkInvariants() const
    {
        const auto &orch = platform_->orchestrator();

        // Recompute ground truth from the instance records.
        std::map<hw::HostId, double> vcpus_used;
        std::map<AccountId, std::uint32_t> live;
        std::map<ServiceId, std::uint32_t> active_count, idle_count;
        for (std::size_t i = 0; i < orch.instanceCount(); ++i) {
            const auto &inst = orch.instance(i);
            if (inst.state == InstanceState::Terminated) {
                ASSERT_TRUE(inst.terminated_at.has_value());
                ASSERT_EQ(inst.in_flight, 0u);
                continue;
            }
            vcpus_used[inst.host] += inst.size.vcpus;
            ++live[inst.account];
            if (inst.state == InstanceState::Active)
                ++active_count[inst.service];
            else
                ++idle_count[inst.service];
            // Idle instances never exceed the documented maximum age.
            if (inst.state == InstanceState::Idle) {
                ASSERT_LE((platform_->now() - inst.state_since).ns(),
                          orch.config().idle_max.ns());
                ASSERT_EQ(inst.in_flight, 0u);
            }
        }

        // Capacity budgets.
        for (const auto &[host, used] : vcpus_used) {
            ASSERT_LE(used, platform_->fleet().host(host).vcpus() *
                                    orch.config().host_usable_fraction +
                                1e-9);
        }

        // Account records agree.
        for (const auto acct : accounts_) {
            const auto it = live.find(acct);
            ASSERT_EQ(it == live.end() ? 0u : it->second,
                      orch.account(acct).live_count);
            ASSERT_GE(platform_->accountSpendUsd(acct), 0.0);
        }

        // Service lists agree with the records.
        for (const auto svc : services_) {
            const auto &record = orch.service(svc);
            const auto a = active_count.find(svc);
            const auto i = idle_count.find(svc);
            ASSERT_EQ(record.active.size(),
                      a == active_count.end() ? 0u : a->second);
            ASSERT_EQ(record.idle.size(),
                      i == idle_count.end() ? 0u : i->second);
        }
    }

    ServiceId
    pickService()
    {
        return services_[rng_.uniformInt(services_.size())];
    }

    AccountId
    pickAccount()
    {
        return accounts_[rng_.uniformInt(accounts_.size())];
    }

    std::unique_ptr<Platform> platform_;
    std::vector<AccountId> accounts_;
    std::vector<ServiceId> services_;
    sim::Rng rng_;
};

class OrchestratorStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OrchestratorStress, InvariantsSurviveRandomOps)
{
    StressFixture fixture(GetParam());
    for (int step = 0; step < 120; ++step) {
        fixture.step();
        fixture.checkInvariants();
        if (::testing::Test::HasFatalFailure())
            FAIL() << "invariant broken at step " << step;
    }
    // Drain: everything disconnects and the fleet empties.
    for (const auto svc : fixture.services_)
        fixture.platform_->disconnectAll(svc);
    fixture.platform_->advance(sim::Duration::hours(3));
    const auto &orch = fixture.platform_->orchestrator();
    for (std::size_t i = 0; i < orch.instanceCount(); ++i) {
        EXPECT_NE(orch.instance(i).state, InstanceState::Idle)
            << "instance " << i << " survived the reaper";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrchestratorStress,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u));

} // namespace
} // namespace eaao::faas
