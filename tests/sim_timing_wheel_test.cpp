/**
 * @file
 * Timing-wheel fast-path tests: the wheel-backed EventQueue must be
 * observationally identical to the pure-heap kernel — same pop order,
 * same cancel verdicts, same counters — across schedule/cancel/advance
 * mixes spanning every wheel level, cascade boundaries and the
 * far-future heap overflow, and its parked state must round-trip
 * bit-exactly through EventQueueImage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/timing_wheel.hpp"

namespace eaao::sim {
namespace {

constexpr std::int64_t kTickNs = std::int64_t(1) << TimingWheel::kTickBits;

/**
 * Both kernels share the slab/seq logic, so a lock-step driver gets
 * identical EventIds from both and can replay every operation 1:1.
 */
struct QueuePair
{
    EventQueue wheel{SimTime(), /*use_wheel=*/true};
    EventQueue heap{SimTime(), /*use_wheel=*/false};
    std::vector<std::pair<int, std::int64_t>> wheel_trace;
    std::vector<std::pair<int, std::int64_t>> heap_trace;
    int tag = 0;

    EventId
    schedule(Duration d)
    {
        const int t = tag++;
        const EventId a = wheel.scheduleAfter(d, [this, t] {
            wheel_trace.emplace_back(t, wheel.now().ns());
        });
        const EventId b = heap.scheduleAfter(d, [this, t] {
            heap_trace.emplace_back(t, heap.now().ns());
        });
        EXPECT_EQ(a, b); // identical slab state => identical handles
        return a;
    }

    void
    cancel(EventId id)
    {
        EXPECT_EQ(wheel.cancel(id), heap.cancel(id));
    }

    void
    advance(Duration d)
    {
        wheel.runUntil(wheel.now() + d);
        heap.runUntil(heap.now() + d);
        EXPECT_EQ(wheel.now(), heap.now());
    }

    void
    finish()
    {
        wheel.run();
        heap.run();
        EXPECT_EQ(wheel_trace, heap_trace);
        EXPECT_EQ(wheel.pending(), heap.pending());
        EXPECT_EQ(wheel.processed(), heap.processed());
        EXPECT_EQ(wheel.scheduled(), heap.scheduled());
        EXPECT_EQ(wheel.cancelled(), heap.cancelled());
    }
};

TEST(TimingWheel, PropertyMatchesPureHeapOverRandomOps)
{
    // 10k mixed ops whose delays span level 0 (sub-tick) through the
    // far-future heap overflow (> level 3's ~4.9 h), interleaved with
    // horizon advances that cross cascade boundaries.
    Rng rng(0x77eel);
    QueuePair q;
    std::vector<EventId> cancellable;

    for (int op = 0; op < 10000; ++op) {
        const std::uint64_t kind = rng.uniformInt(std::uint64_t{10});
        if (kind < 6) { // schedule with a level-spanning delay mix
            const std::uint64_t band = rng.uniformInt(std::uint64_t{10});
            Duration d;
            if (band < 3) { // level 0: within a few ticks
                d = Duration::nanos(static_cast<std::int64_t>(
                    rng.uniformInt(std::uint64_t{4 * kTickNs})));
            } else if (band < 6) { // levels 1-2: ms to seconds
                d = Duration::millis(static_cast<std::int64_t>(
                    rng.uniformInt(std::uint64_t{5000})));
            } else if (band < 8) { // level 3: minutes
                d = Duration::seconds(static_cast<std::int64_t>(
                    rng.uniformInt(std::uint64_t{3000})));
            } else if (band < 9) { // deep level 3: hours
                d = Duration::minutes(static_cast<std::int64_t>(
                    rng.uniformInt(std::uint64_t{280})));
            } else { // beyond the wheel: heap overflow
                d = Duration::hours(5 + static_cast<std::int64_t>(
                                            rng.uniformInt(std::uint64_t{8})));
            }
            const EventId id = q.schedule(d);
            if (rng.uniformInt(std::uint64_t{2}) == 0)
                cancellable.push_back(id);
        } else if (kind < 8) { // cancel a remembered handle
            if (!cancellable.empty()) {
                const std::uint64_t pick = rng.uniformInt(
                    static_cast<std::uint64_t>(cancellable.size()));
                const EventId id = cancellable[pick];
                cancellable.erase(cancellable.begin() +
                                  static_cast<std::ptrdiff_t>(pick));
                q.cancel(id);
            }
        } else { // advance across tick and cascade boundaries
            q.advance(Duration::millis(static_cast<std::int64_t>(
                rng.uniformInt(std::uint64_t{2000}))));
        }
        ASSERT_EQ(q.wheel.pending(), q.heap.pending()) << "op " << op;
    }
    q.finish();
    EXPECT_EQ(q.wheel.pending(), 0u);
}

TEST(TimingWheel, CascadeBoundaryDelaysPopInOrder)
{
    // Delays pinned to exact level spans (64^k ticks) and one tick to
    // either side, from several misaligned start offsets: the cascade
    // windows land exactly on these seams.
    for (const std::int64_t start_off :
         {std::int64_t{0}, kTickNs - 1, 63 * kTickNs, 4096 * kTickNs + 17}) {
        QueuePair q;
        q.advance(Duration::nanos(start_off));
        for (const std::int64_t ticks :
             {std::int64_t{1}, std::int64_t{63}, std::int64_t{64},
              std::int64_t{65}, std::int64_t{64 * 64 - 1},
              std::int64_t{64 * 64}, std::int64_t{64 * 64 + 1},
              std::int64_t{64 * 64 * 64 - 1}, std::int64_t{64 * 64 * 64},
              std::int64_t{64 * 64 * 64 + 1},
              std::int64_t{64LL * 64 * 64 * 64 - 1},
              std::int64_t{64LL * 64 * 64 * 64},
              std::int64_t{64LL * 64 * 64 * 64 + 1}}) {
            q.schedule(Duration::nanos(ticks * kTickNs));
            q.schedule(Duration::nanos(ticks * kTickNs - 1));
            q.schedule(Duration::nanos(ticks * kTickNs + 1));
        }
        // Step the horizon in uneven strides so cascades fire mid-run.
        for (int i = 0; i < 40; ++i)
            q.advance(Duration::nanos((std::int64_t(1) << (i % 24)) * 777));
        q.finish();
    }
}

TEST(TimingWheel, FarFutureOverflowFiresInOrder)
{
    // Events beyond level 3's span never enter the wheel; they must
    // still interleave correctly with near-future wheel traffic.
    QueuePair q;
    for (int i = 0; i < 50; ++i) {
        q.schedule(Duration::hours(6) + Duration::nanos(i * 131));
        q.schedule(Duration::millis(i * 37));
        q.schedule(Duration::minutes(i));
    }
    q.advance(Duration::hours(1));
    q.finish();
    EXPECT_EQ(q.wheel.pending(), 0u);
}

TEST(TimingWheel, LongHorizonBeyondLevelThreeMatchesHeap)
{
    // A multi-hour virtual horizon: events pinned around level 3's
    // span edge (64^4 ticks, ~4.9 h) and far beyond it into the
    // overflow heap, mixed with near-future wheel traffic. Overflow
    // entries enter the wheel only when the frontier catches up, and
    // every pop must still match the pure-heap kernel's total
    // (when, seq) order across the whole 14-hour run.
    constexpr std::int64_t kL3Ticks = 64LL * 64 * 64 * 64;
    QueuePair q;
    for (std::int64_t i = 0; i < 80; ++i) {
        q.schedule(Duration::nanos((kL3Ticks - 40 + i) * kTickNs + i * 13));
        q.schedule(Duration::hours(5 + i % 9) + Duration::minutes(i) +
                   Duration::nanos(i * 131));
        q.schedule(Duration::millis(i * 997));
    }
    // Uneven multi-hour strides so overflow adoption, cascades and
    // quiet gaps all fire mid-run rather than in one final drain.
    for (int i = 0; i < 24; ++i)
        q.advance(Duration::minutes(40) + Duration::nanos(i * 7919));
    q.finish();
    EXPECT_EQ(q.wheel.pending(), 0u);
    EXPECT_GT(q.wheel.now(), SimTime() + Duration::hours(14));
}

TEST(TimingWheel, QuietGapSkipsAcrossFullLevelThreeCascade)
{
    // One entry parked deep in level 3 and nothing else: stepping with
    // advanceOne must cross the quiet gap in O(levels) actions —
    // nextActionTick() goes straight to each cascade seam (L3 flush,
    // then L2, L1, and the final L0 dump) instead of visiting every
    // intermediate tick — and the entry must surface exactly once.
    TimingWheel w;
    const std::int64_t due_tick = 64LL * 64 * 64 * 50 + 1234;
    WheelEntry e;
    e.when = SimTime() + Duration::nanos(due_tick * kTickNs + 77);
    e.seq = 42;
    e.slot = 3;
    e.gen = 7;
    ASSERT_TRUE(w.insert(e));
    ASSERT_EQ(w.size(), 1u);

    std::vector<WheelEntry> popped;
    const auto sink = [&popped](const WheelEntry &x) {
        popped.push_back(x);
    };
    int actions = 0;
    while (w.advanceOne(due_tick, sink))
        ++actions;
    ASSERT_EQ(popped.size(), 1u);
    EXPECT_EQ(popped[0].when, e.when);
    EXPECT_EQ(popped[0].seq, e.seq);
    EXPECT_EQ(popped[0].slot, e.slot);
    EXPECT_EQ(popped[0].gen, e.gen);
    // One flush per level the entry ripples down plus the L0 dump.
    EXPECT_LE(actions, static_cast<int>(TimingWheel::kLevels) + 1);
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.frontier(), due_tick + 1);

    // The now-empty wheel crosses the rest of the horizon in zero
    // actions: the quiet gap is skipped, not walked.
    EXPECT_FALSE(w.advanceOne(due_tick + 4 * TimingWheel::kSlots, sink));
    EXPECT_EQ(w.frontier(), due_tick + 4 * TimingWheel::kSlots + 1);
}

TEST(TimingWheel, StaleHandleAfterSlotReuseIsRefused)
{
    // Cancel an entry parked deep in the wheel, reuse its slab slot
    // for a nearer event, and probe the stale handle: the generation
    // tag must refuse it and the reused slot must fire exactly once.
    EventQueue eq;
    const EventId old_id = eq.scheduleAfter(Duration::minutes(10), [] {});
    ASSERT_TRUE(eq.cancel(old_id));

    int fired = 0;
    const EventId new_id =
        eq.scheduleAfter(Duration::millis(5), [&] { ++fired; });
    ASSERT_NE(old_id, new_id);
    EXPECT_FALSE(eq.cancel(old_id)); // stale generation -> refused
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.cancel(old_id));
    EXPECT_FALSE(eq.cancel(new_id)); // already fired
}

TEST(TimingWheel, CancelledParkedEntriesDieAtCascade)
{
    // A burst of parked-then-cancelled timers (the reap pattern) must
    // not fire, not linger in pending(), and not disturb survivors.
    EventQueue eq;
    std::vector<EventId> doomed;
    int fired = 0;
    for (int i = 0; i < 200; ++i) {
        doomed.push_back(eq.scheduleAfter(
            Duration::millis(10 + i), [&] { ++fired; }));
        eq.scheduleAfter(Duration::millis(10 + i), [&] { ++fired; });
    }
    for (const EventId id : doomed)
        ASSERT_TRUE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 200u);
    eq.run();
    EXPECT_EQ(fired, 200);
    EXPECT_EQ(eq.cancelled(), 200u);
}

/** Field-by-field image equality, wheel placement included. */
void
expectImagesEqual(const EventQueueImage &a, const EventQueueImage &b)
{
    EXPECT_EQ(a.now_ns, b.now_ns);
    EXPECT_EQ(a.next_seq, b.next_seq);
    EXPECT_EQ(a.processed, b.processed);
    EXPECT_EQ(a.scheduled, b.scheduled);
    EXPECT_EQ(a.cancelled, b.cancelled);
    ASSERT_EQ(a.slots.size(), b.slots.size());
    for (std::size_t i = 0; i < a.slots.size(); ++i) {
        EXPECT_EQ(a.slots[i].gen, b.slots[i].gen) << "slot " << i;
        EXPECT_EQ(a.slots[i].live, b.slots[i].live) << "slot " << i;
        EXPECT_EQ(a.slots[i].kind, b.slots[i].kind) << "slot " << i;
        EXPECT_EQ(a.slots[i].arg, b.slots[i].arg) << "slot " << i;
    }
    const auto entries_equal = [](const EventQueueImage::EntryImage &x,
                                  const EventQueueImage::EntryImage &y) {
        return x.when_ns == y.when_ns && x.seq == y.seq && x.slot == y.slot
               && x.gen == y.gen;
    };
    ASSERT_EQ(a.heap.size(), b.heap.size());
    for (std::size_t i = 0; i < a.heap.size(); ++i)
        EXPECT_TRUE(entries_equal(a.heap[i], b.heap[i])) << "heap " << i;
    ASSERT_EQ(a.staging.size(), b.staging.size());
    for (std::size_t i = 0; i < a.staging.size(); ++i)
        EXPECT_TRUE(entries_equal(a.staging[i], b.staging[i]))
            << "staging " << i;
    EXPECT_EQ(a.free_list, b.free_list);
    EXPECT_EQ(a.wheel_frontier, b.wheel_frontier);
    ASSERT_EQ(a.wheel.size(), b.wheel.size());
    for (std::size_t i = 0; i < a.wheel.size(); ++i) {
        EXPECT_EQ(a.wheel[i].when_ns, b.wheel[i].when_ns) << "wheel " << i;
        EXPECT_EQ(a.wheel[i].seq, b.wheel[i].seq) << "wheel " << i;
        EXPECT_EQ(a.wheel[i].slot, b.wheel[i].slot) << "wheel " << i;
        EXPECT_EQ(a.wheel[i].gen, b.wheel[i].gen) << "wheel " << i;
        EXPECT_EQ(a.wheel[i].level, b.wheel[i].level) << "wheel " << i;
        EXPECT_EQ(a.wheel[i].wslot, b.wheel[i].wslot) << "wheel " << i;
    }
}

TEST(TimingWheel, SnapshotRoundTripIsBitExactWithPostRestoreCancels)
{
    // Park tagged events across every level (and the overflow heap),
    // advance far enough that cascades have moved entries between
    // levels, then capture. Restore must reproduce the image
    // bit-exactly — bucket placement included — and handles issued
    // before the capture must stay cancellable in the restored queue.
    EventQueue original;
    std::vector<std::pair<std::uint64_t, std::int64_t>> original_trace;
    const auto cb_for = [&original,
                         &original_trace](std::uint64_t arg) {
        return [&original, &original_trace, arg] {
            original_trace.emplace_back(arg, original.now().ns());
        };
    };
    std::vector<EventId> ids;
    std::uint64_t arg = 0;
    for (const std::int64_t ticks :
         {std::int64_t{1}, std::int64_t{7}, std::int64_t{64},
          std::int64_t{100}, std::int64_t{64 * 64 + 9},
          std::int64_t{64 * 64 * 64 + 5}, std::int64_t{64LL * 64 * 64 * 64},
          std::int64_t{64LL * 64 * 64 * 64 + 99}}) {
        for (int rep = 0; rep < 4; ++rep) {
            ids.push_back(original.scheduleAt(
                original.now()
                    + Duration::nanos(ticks * kTickNs + rep * 101),
                EventTag{1, arg}, cb_for(arg)));
            ++arg;
        }
    }
    // Cross several cascade boundaries so parked entries have moved.
    original.runUntil(SimTime() + Duration::nanos(70 * kTickNs + 1234));

    EventQueueImage img;
    ASSERT_TRUE(original.exportImage(img));
    EXPECT_GT(img.wheel.size(), 0u);
    original_trace.clear(); // compare post-capture firings only

    EventQueue restored;
    std::vector<std::pair<std::uint64_t, std::int64_t>> restored_trace;
    restored.importImage(img, [&restored, &restored_trace](
                                  std::uint32_t kind, std::uint64_t a) {
        EXPECT_EQ(kind, 1u);
        return EventQueue::Callback([&restored, &restored_trace, a] {
            restored_trace.emplace_back(a, restored.now().ns());
        });
    });

    EventQueueImage img2;
    ASSERT_TRUE(restored.exportImage(img2));
    expectImagesEqual(img, img2);

    // Post-restore cancels through pre-capture handles, applied to
    // both queues; the remaining schedules must replay identically.
    for (std::size_t i = 0; i < ids.size(); i += 3) {
        const bool orig_ok = original.cancel(ids[i]);
        EXPECT_EQ(orig_ok, restored.cancel(ids[i])) << "id index " << i;
    }
    original.run();
    restored.run();
    EXPECT_EQ(original_trace.size(), restored_trace.size());
    EXPECT_EQ(original_trace, restored_trace);
    EXPECT_EQ(original.processed(), restored.processed());
    EXPECT_EQ(original.cancelled(), restored.cancelled());
}

TEST(TimingWheel, WheelImageRestoresIntoPureHeapQueue)
{
    // A wheel-bearing image must stay runnable when restored into a
    // pure-heap kernel (the parked entries just live in the heap).
    EventQueue original;
    std::vector<std::uint64_t> original_fired;
    for (std::uint64_t i = 0; i < 32; ++i) {
        original.scheduleAfter(
            Duration::millis(static_cast<std::int64_t>(1 + i * 97)),
            EventTag{1, i},
            [&original_fired, i] { original_fired.push_back(i); });
    }
    original.runUntil(SimTime() + Duration::millis(40));

    EventQueueImage img;
    ASSERT_TRUE(original.exportImage(img));
    EXPECT_GT(img.wheel.size(), 0u);
    original_fired.clear(); // compare post-capture firings only

    EventQueue heap_only(SimTime(), /*use_wheel=*/false);
    std::vector<std::uint64_t> restored_fired;
    heap_only.importImage(img, [&restored_fired](std::uint32_t,
                                                 std::uint64_t a) {
        return EventQueue::Callback(
            [&restored_fired, a] { restored_fired.push_back(a); });
    });
    original.run();
    heap_only.run();
    EXPECT_EQ(original_fired, restored_fired);
}

} // namespace
} // namespace eaao::sim
