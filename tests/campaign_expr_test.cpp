/**
 * @file
 * The trigger expression language: parser goldens (via renderExpr),
 * total-evaluation semantics, windowed aggregates over the
 * CounterTimeline, custom functions, and the line-precise parse
 * errors the spec book catalogs.
 */

#include "campaign/expr.hpp"
#include "campaign/specfile.hpp"
#include "campaign/trigger.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

using namespace eaao::campaign;

namespace {

/** Fixed counters: x = 10, y = 4; rate/count_since echo their args. */
class FakeCounters final : public CounterSource
{
  public:
    double valueAt(const std::string &name, double) const override
    {
        if (name == "x")
            return 10.0;
        if (name == "y")
            return 4.0;
        return 0.0;
    }
    double rate(const std::string &name, double window_s,
                double) const override
    {
        return name == "x" ? 100.0 / window_s : 0.0;
    }
    double countSince(const std::string &name, double since_s,
                      double t_s) const override
    {
        return name == "x" ? t_s - since_s : 0.0;
    }
};

double
evalText(const std::string &text)
{
    const auto e = parseExpr(text, "t:1");
    const FakeCounters counters;
    return evalExpr(*e, counters, /*t_s=*/60.0);
}

std::string
parseErrorOf(const std::string &text)
{
    try {
        parseExpr(text, "spec.scenario:9");
    } catch (const SpecError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected SpecError for: " << text;
    return "";
}

std::string
rendered(const std::string &text)
{
    return renderExpr(*parseExpr(text, "t:1"));
}

} // namespace

TEST(ExprEval, ArithmeticAndPrecedence)
{
    EXPECT_DOUBLE_EQ(evalText("1 + 2 * 3"), 7.0);
    EXPECT_DOUBLE_EQ(evalText("(1 + 2) * 3"), 9.0);
    EXPECT_DOUBLE_EQ(evalText("-x + 2"), -8.0);
    EXPECT_DOUBLE_EQ(evalText("x - y - 1"), 5.0);
    EXPECT_DOUBLE_EQ(evalText("x / y"), 2.5);
    // Total semantics: division by zero yields 0, not a trap.
    EXPECT_DOUBLE_EQ(evalText("x / (y - 4)"), 0.0);
    // Unknown counters read 0.
    EXPECT_DOUBLE_EQ(evalText("orch.never_sampled + 1"), 1.0);
}

TEST(ExprEval, ComparisonsAndBooleans)
{
    EXPECT_DOUBLE_EQ(evalText("x > 9"), 1.0);
    EXPECT_DOUBLE_EQ(evalText("x > 10"), 0.0);
    EXPECT_DOUBLE_EQ(evalText("x >= 10 && y <= 4"), 1.0);
    EXPECT_DOUBLE_EQ(evalText("x == 10 || y != 4"), 1.0);
    EXPECT_DOUBLE_EQ(evalText("!(x < 100)"), 0.0);
    // && binds tighter than ||.
    EXPECT_DOUBLE_EQ(evalText("1 || 0 && 0"), 1.0);
}

TEST(ExprEval, Functions)
{
    EXPECT_DOUBLE_EQ(evalText("min(x, y)"), 4.0);
    EXPECT_DOUBLE_EQ(evalText("max(x, y)"), 10.0);
    EXPECT_DOUBLE_EQ(evalText("abs(y - x)"), 6.0);
    EXPECT_DOUBLE_EQ(evalText("time()"), 60.0);
    EXPECT_DOUBLE_EQ(evalText("rate(x, 50)"), 2.0);
    EXPECT_DOUBLE_EQ(evalText("count_since(x, 40)"), 20.0);
    // With no resolver registered, custom_function evaluates to 0.
    EXPECT_DOUBLE_EQ(evalText("custom_function('f', x) + 1"), 1.0);
}

TEST(ExprEval, CustomFunctionResolver)
{
    const auto e = parseExpr("custom_function('double_it', x + 1)", "t:1");
    const FakeCounters counters;
    const std::function<CustomFunction(const std::string &)> resolver =
        [](const std::string &name) -> CustomFunction {
        if (name == "double_it")
            return [](const std::vector<double> &args) {
                return args.empty() ? 0.0 : 2.0 * args[0];
            };
        return nullptr;
    };
    EXPECT_DOUBLE_EQ(evalExpr(*e, counters, 0.0, &resolver), 22.0);
}

TEST(ExprRender, CanonicalForms)
{
    EXPECT_EQ(rendered("1+2*3"), "(1 + (2 * 3))");
    EXPECT_EQ(rendered("x>9&&y<5"), "((x > 9) && (y < 5))");
    EXPECT_EQ(rendered("rate(orch.placements,30)>2"),
              "(rate(orch.placements, 30) > 2)");
    EXPECT_EQ(rendered("custom_function('f', 1)"),
              "custom_function('f', 1)");
}

TEST(ExprErrors, LinePreciseAndOneLine)
{
    const std::string msg = parseErrorOf("x + ");
    EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
    EXPECT_NE(msg.find("spec.scenario:9:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("of 'x + '"), std::string::npos) << msg;

    EXPECT_NE(parseErrorOf("frobnicate(1)").find("unknown function"),
              std::string::npos);
    EXPECT_NE(parseErrorOf("min(1)").find("argument(s), got 1"),
              std::string::npos);
    EXPECT_NE(parseErrorOf("rate(5, 30)")
                  .find("counter name as its first argument"),
              std::string::npos);
    EXPECT_NE(parseErrorOf("custom_function(x)")
                  .find("'quoted name' as its first argument"),
              std::string::npos);
    EXPECT_NE(parseErrorOf("x ? 1").find("unexpected character"),
              std::string::npos);
    EXPECT_NE(parseErrorOf("x > 1 y").find("trailing input"),
              std::string::npos);
    EXPECT_NE(parseErrorOf("'unclosed").find("unclosed string literal"),
              std::string::npos);
    EXPECT_NE(parseErrorOf("(x > 1").find("expected ')'"),
              std::string::npos);
}

TEST(TriggerEngine, TimelineAggregates)
{
    CounterTimeline tl;
    tl.record("c", 0.0, 0.0);
    tl.record("c", 10.0, 50.0);
    tl.record("c", 20.0, 150.0);

    EXPECT_DOUBLE_EQ(tl.valueAt("c", 5.0), 0.0);
    EXPECT_DOUBLE_EQ(tl.valueAt("c", 10.0), 50.0);
    EXPECT_DOUBLE_EQ(tl.valueAt("c", 99.0), 150.0);
    EXPECT_DOUBLE_EQ(tl.valueAt("missing", 99.0), 0.0);
    // Increase over [10, 20] / 10.
    EXPECT_DOUBLE_EQ(tl.rate("c", 10.0, 20.0), 10.0);
    EXPECT_DOUBLE_EQ(tl.rate("c", 0.0, 20.0), 0.0);
    // Samples in (0, 20].
    EXPECT_DOUBLE_EQ(tl.countSince("c", 0.0, 20.0), 2.0);
}

TEST(TriggerEngine, RisingEdgeFiring)
{
    TriggerEngine engine;
    Trigger t;
    t.name = "hot";
    t.condition_text = "c >= 100";
    t.condition = parseExpr(t.condition_text, "t:1");
    t.message = "crossed 100";
    engine.add(std::move(t));

    engine.sample("c", 0.0, 10.0);
    engine.sample("c", 10.0, 120.0); // false -> true: fires
    engine.sample("c", 20.0, 130.0); // stays true: no refire
    engine.sample("c", 30.0, 50.0);  // re-arms
    engine.sample("c", 40.0, 200.0); // fires again

    const auto &firings = engine.firings();
    ASSERT_EQ(firings.size(), 2u);
    EXPECT_DOUBLE_EQ(firings[0].t_s, 10.0);
    EXPECT_EQ(firings[0].name, "hot");
    EXPECT_EQ(firings[0].message, "crossed 100");
    EXPECT_DOUBLE_EQ(firings[1].t_s, 40.0);
}
