/**
 * @file
 * Regression corpus replay: every committed replay file under
 * tests/corpus/ must parse, carry no fault injection, hold every
 * invariant oracle, and produce byte-identical logs across thread
 * counts. New reproducers earned by the fuzzer are added to the corpus
 * and automatically enforced here forever after.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "testkit/invariants.hpp"
#include "testkit/runner.hpp"
#include "testkit/scenario.hpp"
#include "testkit/shrink.hpp"

#ifndef EAAO_CORPUS_DIR
#error "EAAO_CORPUS_DIR must point at tests/corpus"
#endif

namespace eaao::testkit {
namespace {

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(EAAO_CORPUS_DIR)) {
        if (entry.path().extension() == ".scenario")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

Scenario
load(const std::filesystem::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    Scenario sc;
    std::string error;
    EXPECT_TRUE(Scenario::parse(buf.str(), sc, error))
        << path << ": " << error;
    return sc;
}

TEST(Corpus, HasCommittedScenarios)
{
    EXPECT_GE(corpusFiles().size(), 5u);
}

TEST(Corpus, EveryFileReplaysGreen)
{
    const std::vector<std::filesystem::path> files = corpusFiles();
    ASSERT_FALSE(files.empty());
    for (const std::filesystem::path &path : files) {
        SCOPED_TRACE(path.filename().string());
        const Scenario sc = load(path);
        // Committed corpus files describe main-branch behaviour; a
        // reproducer is only committed after its bug is fixed and its
        // fault knob reset.
        EXPECT_EQ(sc.fault, 0u);

        InvariantOptions opts;
        opts.threads = 8; // --threads 1 vs 8 byte-equality per issue spec
        opts.thread_trials = 2;
        const std::vector<Violation> violations = checkInvariants(sc, opts);
        for (const Violation &v : violations)
            ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
    }
}

TEST(Corpus, ShrinkIsFixedPointOnMutationMinima)
{
    // Every committed mutation minimum is already minimal: re-planting
    // its fault and re-running the shrinker must change nothing — the
    // serialized bytes are a fixed point. A failure here means either
    // the shrinker got smarter (re-minimize the corpus file) or a
    // shrink pass regressed into accepting non-failing candidates.
    const struct
    {
        const char *file;
        std::uint32_t fault;
    } minima[] = {
        {"mutation-routing-min.scenario", 1},
        {"mutation-window-min.scenario", 4},
        {"mutation-snapshot-min.scenario", 5},
        {"mutation-timetravel-min.scenario", 6},
    };
    for (const auto &m : minima) {
        SCOPED_TRACE(m.file);
        Scenario sc =
            load(std::filesystem::path(EAAO_CORPUS_DIR) / m.file);
        sc.fault = m.fault;

        InvariantOptions opts;
        opts.threads = 2;
        opts.thread_trials = 2;
        opts.shard_arm = 2;
        const FailurePredicate still_fails =
            [&opts](const Scenario &candidate) {
                return !checkInvariants(candidate, opts).empty();
            };
        ASSERT_TRUE(still_fails(sc)) << "fault " << m.fault
                                     << " no longer bites its minimum";
        const ShrinkResult shrunk = shrink(sc, still_fails);
        EXPECT_EQ(shrunk.scenario.serialize(), sc.serialize());
    }
}

TEST(Corpus, V1FilesUpgradeToV2Losslessly)
{
    // The committed corpus stays in the legacy flat v1 format on
    // purpose: it pins backward compatibility. Parsing a v1 file and
    // re-serializing must produce an equivalent v2 campaign — same
    // model, same replay behaviour.
    const std::vector<std::filesystem::path> files = corpusFiles();
    ASSERT_FALSE(files.empty());
    for (const std::filesystem::path &path : files) {
        SCOPED_TRACE(path.filename().string());
        const Scenario v1 = load(path);
        const std::string v2_text = v1.serialize();
        EXPECT_NE(v2_text.find("eaao-scenario v2"), std::string::npos);

        Scenario v2;
        std::string error;
        ASSERT_TRUE(Scenario::parse(v2_text, v2, error)) << error;
        EXPECT_EQ(v2.serialize(), v2_text);
        EXPECT_EQ(v2.seed, v1.seed);
        EXPECT_EQ(v2.host_count, v1.host_count);
        EXPECT_EQ(v2.steps.size(), v1.steps.size());
        EXPECT_EQ(runScenario(v2).render(), runScenario(v1).render());
    }
}

} // namespace
} // namespace eaao::testkit
