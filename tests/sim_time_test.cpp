/**
 * @file
 * Unit tests for virtual time.
 */

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace eaao::sim {
namespace {

TEST(Duration, FactoryUnitsAgree)
{
    EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
    EXPECT_EQ(Duration::millis(1500).ns(), Duration::seconds(1).ns() +
                                               Duration::millis(500).ns());
    EXPECT_EQ(Duration::minutes(2), Duration::seconds(120));
    EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
    EXPECT_EQ(Duration::days(1), Duration::hours(24));
    EXPECT_EQ(Duration::micros(7).ns(), 7000);
}

TEST(Duration, FromSecondsFRoundTrips)
{
    const Duration d = Duration::fromSecondsF(1.5);
    EXPECT_DOUBLE_EQ(d.secondsF(), 1.5);
    const Duration tiny = Duration::fromSecondsF(3e-9);
    EXPECT_EQ(tiny.ns(), 3);
    const Duration negative = Duration::fromSecondsF(-2.25);
    EXPECT_DOUBLE_EQ(negative.secondsF(), -2.25);
}

TEST(Duration, Arithmetic)
{
    const Duration a = Duration::seconds(10);
    const Duration b = Duration::seconds(4);
    EXPECT_EQ((a + b).ns(), Duration::seconds(14).ns());
    EXPECT_EQ((a - b).ns(), Duration::seconds(6).ns());
    EXPECT_EQ((-b).ns(), -Duration::seconds(4).ns());
    EXPECT_EQ((b * 3), Duration::seconds(12));
    EXPECT_EQ((a / 2), Duration::seconds(5));
    EXPECT_EQ(Duration::seconds(-3).abs(), Duration::seconds(3));
}

TEST(Duration, Comparisons)
{
    EXPECT_LT(Duration::millis(999), Duration::seconds(1));
    EXPECT_GT(Duration::minutes(1), Duration::seconds(59));
    EXPECT_EQ(Duration::hours(2), Duration::minutes(120));
}

TEST(Duration, UnitViews)
{
    const Duration d = Duration::minutes(90);
    EXPECT_DOUBLE_EQ(d.minutesF(), 90.0);
    EXPECT_DOUBLE_EQ(d.hoursF(), 1.5);
    EXPECT_DOUBLE_EQ(Duration::days(2).daysF(), 2.0);
}

TEST(Duration, HumanRendering)
{
    EXPECT_EQ(Duration::seconds(90).str(), "90.00 s");
    EXPECT_EQ(Duration::minutes(10).str(), "10.0 min");
    EXPECT_EQ(Duration::days(3).str(), "3.0 d");
    EXPECT_EQ(Duration::micros(2).str(), "2.00 us");
}

TEST(SimTime, EpochAndOffsets)
{
    const SimTime t0;
    EXPECT_EQ(t0.ns(), 0);
    const SimTime t1 = t0 + Duration::seconds(100);
    EXPECT_EQ((t1 - t0), Duration::seconds(100));
    EXPECT_EQ((t1 - Duration::seconds(40)).ns(),
              Duration::seconds(60).ns());
    EXPECT_LT(t0, t1);
}

TEST(SimTime, FractionalSeconds)
{
    const SimTime t = SimTime::fromSecondsF(12.25);
    EXPECT_DOUBLE_EQ(t.secondsF(), 12.25);
}

TEST(SimTime, NegativeInstantsAllowed)
{
    // Hosts boot before the simulation epoch.
    const SimTime before = SimTime() - Duration::days(30);
    EXPECT_LT(before, SimTime());
    EXPECT_DOUBLE_EQ(before.secondsF(), -30.0 * 86400.0);
}

} // namespace
} // namespace eaao::sim
