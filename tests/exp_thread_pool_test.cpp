/**
 * @file
 * Unit tests for the experiment harness worker pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "exp/thread_pool.hpp"

namespace eaao::exp {
namespace {

TEST(ThreadPool, TasksExecuteExactlyOnceUnderContention)
{
    constexpr int kTasks = 2000;
    std::atomic<int> total{0};
    std::vector<std::atomic<int>> per_task(kTasks);
    for (auto &c : per_task)
        c.store(0);

    {
        ThreadPool pool(8);
        for (int i = 0; i < kTasks; ++i) {
            pool.submit([&total, &per_task, i] {
                per_task[static_cast<std::size_t>(i)].fetch_add(1);
                total.fetch_add(1);
            });
        }
        pool.wait();
        EXPECT_EQ(total.load(), kTasks);
    }
    for (const auto &c : per_task)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ShutdownDrainsQueue)
{
    constexpr int kTasks = 500;
    std::atomic<int> ran{0};
    {
        // Few workers, many tasks: most of the queue is still pending
        // when the destructor runs; it must drain everything.
        ThreadPool pool(2);
        for (int i = 0; i < kTasks; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, ThrowingTaskDoesNotDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("trial failed"); });
    for (int i = 0; i < 50; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Every non-throwing task still ran, and the pool remains usable.
    EXPECT_EQ(ran.load(), 50);
    pool.submit([&ran] { ran.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 51);
}

TEST(ThreadPool, WaitRethrowsFirstExceptionOnly)
{
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i)
        pool.submit([] { throw std::logic_error("boom"); });
    EXPECT_THROW(pool.wait(), std::logic_error);
    // The remaining exceptions were dropped with the first rethrow.
    EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
    bool ran = false;
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran);
}

TEST(ThreadPool, TasksCanSubmitWhilePoolBusy)
{
    // Stress the queue with bursts from the submitting thread while
    // workers are already chewing; wait() between bursts.
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int burst = 0; burst < 10; ++burst) {
        for (int i = 0; i < 100; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(ran.load(), (burst + 1) * 100);
    }
}

} // namespace
} // namespace eaao::exp
