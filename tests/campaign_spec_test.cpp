/**
 * @file
 * The `eaao-scenario v2` campaign reader: section/line parsing, the
 * checked accessors of CampaignSpec, trigger-line parsing, and —
 * critically for the one-line exit-2 CLI contract — that every
 * malformed input throws a SpecError naming the exact file:line.
 */

#include "campaign/spec.hpp"
#include "campaign/specfile.hpp"

#include <gtest/gtest.h>

#include <string>

using eaao::campaign::CampaignSpec;
using eaao::campaign::SpecError;
using eaao::campaign::SpecFile;

namespace {

/** Parse @p text expecting failure; returns the one-line message. */
std::string
parseError(const std::string &text)
{
    try {
        CampaignSpec::parse(text, "spec.scenario");
    } catch (const SpecError &e) {
        const std::string msg = e.what();
        EXPECT_EQ(msg.find('\n'), std::string::npos)
            << "error must be one line: " << msg;
        return msg;
    }
    ADD_FAILURE() << "expected SpecError for:\n" << text;
    return "";
}

const char *const kMinimal = "eaao-scenario v2\n"
                             "[campaign]\n"
                             "name = demo\n"
                             "program = replay\n";

} // namespace

TEST(SpecFileParse, HeaderErrors)
{
    EXPECT_EQ(parseError(""),
              "spec.scenario:1: empty file (no 'eaao-scenario v2' "
              "header)");
    EXPECT_NE(parseError("not a scenario\n")
                  .find("expected header 'eaao-scenario v2'"),
              std::string::npos);
    // v1 gets a pointer at the right parser instead of a flat reject.
    EXPECT_NE(parseError("eaao-scenario v1\nseed 1\n")
                  .find("v1 is the flat replay format"),
              std::string::npos);
    // Future versions fail loudly with the supported maximum.
    EXPECT_NE(parseError("eaao-scenario v3\n")
                  .find("newer than this binary supports (max v2)"),
              std::string::npos);
}

TEST(SpecFileParse, SectionErrors)
{
    const std::string unknown = parseError("eaao-scenario v2\n"
                                           "[campagin]\n"
                                           "name = x\n");
    EXPECT_NE(unknown.find("spec.scenario:2: unknown section "
                           "[campagin]"),
              std::string::npos);

    EXPECT_NE(parseError(std::string(kMinimal) + "[campaign]\n")
                  .find(":5: duplicate section [campaign]"),
              std::string::npos);

    EXPECT_NE(parseError("eaao-scenario v2\n"
                         "name = x\n")
                  .find(":2: content before any [section] header"),
              std::string::npos);

    EXPECT_NE(parseError("eaao-scenario v2\n"
                         "[workload\n")
                  .find(":2: malformed section header"),
              std::string::npos);

    EXPECT_NE(parseError(std::string(kMinimal) +
                         "[outputs]\n"
                         "note = \"unclosed\n")
                  .find(":6: unclosed '\"'"),
              std::string::npos);
}

TEST(SpecFileParse, KeyValueVsDirective)
{
    // The LHS of the FIRST '=' decides: one identifier => key line,
    // anything else => positional directive. A title containing '='
    // still parses, keeping the full value.
    SpecFile file;
    std::string error;
    ASSERT_TRUE(SpecFile::parse("eaao-scenario v2\n"
                                "[campaign]\n"
                                "name = x\n"
                                "program = y\n"
                                "title = === Figure 4 ===\n"
                                "[tenants]\n"
                                "account 3 1000\n",
                                "t", file, error))
        << error;
    const auto *title = file.section("campaign")->find("title");
    ASSERT_NE(title, nullptr);
    EXPECT_EQ(title->value, "=== Figure 4 ===");
    const auto *acct = file.section("tenants")->lines.data();
    EXPECT_FALSE(acct->isKeyValue());
    EXPECT_EQ(acct->tokens[0], "account");
}

TEST(CampaignSpecAccess, MissingAndMalformedKeys)
{
    EXPECT_NE(parseError("eaao-scenario v2\n"
                         "[campaign]\n"
                         "program = replay\n")
                  .find("[campaign] is missing required key 'name'"),
              std::string::npos);

    EXPECT_NE(parseError("eaao-scenario v2\n"
                         "[workload]\n"
                         "runs = 3\n")
                  .find(":1: missing required section [campaign]"),
              std::string::npos);

    const CampaignSpec spec = CampaignSpec::parse(
        std::string(kMinimal) + "[workload]\n"
                                "runs = three\n"
                                "count = -4\n"
                                "flagged = maybe\n"
                                "sweep = 1 2 0.5\n",
        "spec.scenario");
    EXPECT_THROW(spec.num("workload", "runs"), SpecError);
    EXPECT_THROW(spec.u32("workload", "count"), SpecError);
    EXPECT_THROW(spec.flag("workload", "flagged", false), SpecError);
    EXPECT_THROW(spec.u64("platform", "seed"), SpecError);
    try {
        spec.num("workload", "runs");
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("spec.scenario:6: 'runs' expects a number, "
                            "got 'three'"),
                  std::string::npos)
            << e.what();
    }

    // The happy path for the same accessors.
    EXPECT_EQ(spec.numList("workload", "sweep"),
              (std::vector<double>{1.0, 2.0, 0.5}));
    EXPECT_EQ(spec.u32("workload", "absent", 7u), 7u);
    EXPECT_TRUE(spec.flag("outputs", "trigger_log", false) == false);
    EXPECT_EQ(spec.name(), "demo");
    EXPECT_EQ(spec.program(), "replay");
}

TEST(CampaignSpecAccess, QuotedTokensAndNotes)
{
    const CampaignSpec spec = CampaignSpec::parse(
        std::string(kMinimal) +
            "[attack]\n"
            "arm \"two words\" 60 30\n"
            "[outputs]\n"
            "note = plain text line\n"
            "note = \"   indented via quotes\"\n",
        "spec.scenario");
    const auto arms = spec.directives("attack", "arm");
    ASSERT_EQ(arms.size(), 1u);
    ASSERT_EQ(arms[0]->tokens.size(), 4u);
    EXPECT_EQ(arms[0]->tokens[1], "two words");

    const auto notes = spec.notes();
    ASSERT_EQ(notes.size(), 2u);
    EXPECT_EQ(notes[0], "plain text line");
    EXPECT_EQ(notes[1], "   indented via quotes");
}

TEST(CampaignSpecTriggers, ParseAndErrors)
{
    const CampaignSpec spec = CampaignSpec::parse(
        std::string(kMinimal) +
            "[triggers]\n"
            "trigger hot when orch.instances > 100 emit \"fleet hot\"\n",
        "spec.scenario");
    const auto triggers = spec.triggers();
    ASSERT_EQ(triggers.size(), 1u);
    EXPECT_EQ(triggers[0].name, "hot");
    EXPECT_EQ(triggers[0].message, "fleet hot");
    EXPECT_EQ(triggers[0].condition_text, "orch.instances > 100");

    EXPECT_NE(parseError(std::string(kMinimal) +
                         "[triggers]\n"
                         "trigger hot orch.instances > 100 emit \"m\"\n")
                  .find(":6: expected: trigger <name> when <condition> "
                        "emit \"<message>\""),
              std::string::npos);
    EXPECT_NE(parseError(std::string(kMinimal) +
                         "[triggers]\n"
                         "trigger hot when orch.instances > 100 x \"m\"\n")
                  .find("must end with: emit"),
              std::string::npos);
    // A malformed condition expression fails at load, naming the line.
    EXPECT_NE(parseError(std::string(kMinimal) +
                         "[triggers]\n"
                         "trigger hot when orch.instances >> 1 emit \"m\"\n")
                  .find("spec.scenario:6:"),
              std::string::npos);
}

TEST(CampaignSpecRender, CanonicalRoundTrip)
{
    const std::string text = std::string(kMinimal) +
                             "[platform]\n"
                             "seed = 42\n"
                             "[tenants]\n"
                             "account 0 1000\n";
    const CampaignSpec spec = CampaignSpec::parse(text, "t");
    const std::string rendered = spec.file().render();
    // Rendering the rendered text is a fixed point.
    const CampaignSpec again = CampaignSpec::parse(rendered, "t");
    EXPECT_EQ(again.file().render(), rendered);
    EXPECT_EQ(again.u64("platform", "seed"), 42u);
}
