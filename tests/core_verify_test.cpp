/**
 * @file
 * Unit tests for co-location verification: the scalable method, its
 * baselines, and their cost/accuracy trade-offs.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/fingerprint.hpp"
#include "core/verify.hpp"
#include "stats/clustering.hpp"

namespace eaao::core {
namespace {

struct Fixture
{
    faas::PlatformConfig cfg;
    std::unique_ptr<faas::Platform> platform;
    faas::AccountId acct = 0;
    faas::ServiceId svc = 0;

    explicit Fixture(std::uint64_t seed = 1,
                     faas::ExecEnv env = faas::ExecEnv::Gen1)
    {
        cfg.profile = faas::DataCenterProfile::usEast1();
        cfg.profile.host_count = 330;
        cfg.seed = seed;
        platform = std::make_unique<faas::Platform>(cfg);
        acct = platform->createAccount();
        svc = platform->deployService(acct, env);
    }

    /** Launch n instances and collect ids + fingerprints + classes. */
    void
    launch(std::uint32_t n)
    {
        ids = platform->connect(svc, n);
        fp_keys.clear();
        class_keys.clear();
        truth.clear();
        for (const faas::InstanceId id : ids) {
            faas::SandboxView sbx = platform->sandbox(id);
            if (sbx.env() == faas::ExecEnv::Gen1) {
                const Gen1Fingerprint fp =
                    quantizeGen1(readGen1(sbx), 1.0);
                fp_keys.push_back(fingerprintKey(fp));
                std::uint64_t h = 0xcbf29ce484222325ULL;
                for (const char c : fp.cpu_model) {
                    h ^= static_cast<unsigned char>(c);
                    h *= 0x100000001b3ULL;
                }
                class_keys.push_back(h);
            } else {
                const auto fp = readGen2(sbx);
                fp_keys.push_back(fingerprintKey(fp));
                class_keys.push_back(fingerprintKey(fp));
            }
            truth.push_back(platform->oracleHostOf(id));
        }
    }

    std::vector<faas::InstanceId> ids;
    std::vector<std::uint64_t> fp_keys;
    std::vector<std::uint64_t> class_keys;
    std::vector<std::uint64_t> truth;
};

TEST(VerifyScalable, RecoversTrueClusters)
{
    Fixture f;
    f.launch(200);
    channel::RngChannel chan(*f.platform);
    const VerifyResult result = verifyScalable(
        *f.platform, chan, f.ids, f.fp_keys, f.class_keys);

    const stats::PairConfusion pc =
        stats::comparePairs(result.cluster_of, f.truth);
    EXPECT_EQ(pc.fp, 0u);
    EXPECT_EQ(pc.fn, 0u);
    EXPECT_EQ(result.clusterCount(),
              stats::distinctCount(f.truth));
}

TEST(VerifyScalable, BestCaseTestCountIsOrderHosts)
{
    Fixture f(2);
    f.launch(400);
    channel::RngChannel chan(*f.platform);
    const VerifyResult result = verifyScalable(
        *f.platform, chan, f.ids, f.fp_keys, f.class_keys);

    const std::size_t hosts = stats::distinctCount(f.truth);
    // One one-shot test per occupied host, one step-3 test, plus a
    // small allowance for boundary-straddling fingerprints.
    EXPECT_LE(result.group_tests, hosts + 8);
    EXPECT_GE(result.group_tests, hosts - 8);
}

TEST(VerifyScalable, ParallelismShortensWaves)
{
    Fixture f(3);
    f.launch(400);
    channel::RngChannel chan_par(*f.platform);
    VerifyOptions par;
    par.parallelize = true;
    const VerifyResult with_par = verifyScalable(
        *f.platform, chan_par, f.ids, f.fp_keys, f.class_keys, par);

    channel::RngChannel chan_ser(*f.platform);
    VerifyOptions ser;
    ser.parallelize = false;
    const VerifyResult without = verifyScalable(
        *f.platform, chan_ser, f.ids, f.fp_keys, f.class_keys, ser);

    // Same clustering either way...
    const stats::PairConfusion a =
        stats::comparePairs(with_par.cluster_of, f.truth);
    const stats::PairConfusion b =
        stats::comparePairs(without.cluster_of, f.truth);
    EXPECT_EQ(a.fp + a.fn, 0u);
    EXPECT_EQ(b.fp + b.fn, 0u);
    // ...but parallel waves finish no later than serialized ones.
    EXPECT_LE(with_par.waves, without.waves);
}

TEST(VerifyScalable, HandlesFingerprintFalsePositives)
{
    // Force all fingerprints identical: the verifier must still
    // recover true clusters from covert-channel evidence alone.
    Fixture f(4);
    f.launch(60);
    std::vector<std::uint64_t> same_key(f.ids.size(), 12345);
    std::vector<std::uint64_t> same_class(f.ids.size(), 1);
    channel::RngChannel chan(*f.platform);
    const VerifyResult result = verifyScalable(
        *f.platform, chan, f.ids, same_key, same_class);

    const stats::PairConfusion pc =
        stats::comparePairs(result.cluster_of, f.truth);
    EXPECT_EQ(pc.fp, 0u);
    EXPECT_EQ(pc.fn, 0u);
}

TEST(VerifyScalable, HandlesFingerprintFalseNegatives)
{
    // Force all fingerprints distinct: step 3 must find co-location.
    Fixture f(5);
    f.launch(60);
    std::vector<std::uint64_t> distinct_keys(f.ids.size());
    for (std::size_t i = 0; i < distinct_keys.size(); ++i)
        distinct_keys[i] = 1000 + i;
    channel::RngChannel chan(*f.platform);
    const VerifyResult result = verifyScalable(
        *f.platform, chan, f.ids, distinct_keys, f.class_keys);

    const stats::PairConfusion pc =
        stats::comparePairs(result.cluster_of, f.truth);
    EXPECT_EQ(pc.fn, 0u);
    EXPECT_EQ(pc.fp, 0u);
}

TEST(VerifyScalable, Gen2SkipsStepThreeAndStaysCorrect)
{
    Fixture f(6, faas::ExecEnv::Gen2);
    f.launch(150);
    channel::RngChannel chan(*f.platform);
    VerifyOptions opts;
    opts.no_false_negatives = true;
    const VerifyResult result = verifyScalable(
        *f.platform, chan, f.ids, f.fp_keys, f.class_keys, opts);

    const stats::PairConfusion pc =
        stats::comparePairs(result.cluster_of, f.truth);
    EXPECT_EQ(pc.fp, 0u);
    EXPECT_EQ(pc.fn, 0u);
}

TEST(VerifyScalable, SingleInstanceTrivial)
{
    Fixture f(7);
    f.launch(1);
    channel::RngChannel chan(*f.platform);
    const VerifyResult result = verifyScalable(
        *f.platform, chan, f.ids, f.fp_keys, f.class_keys);
    EXPECT_EQ(result.cluster_of.size(), 1u);
    EXPECT_EQ(result.group_tests, 0u);
}

TEST(VerifyPairwise, MatchesScalableButCostsQuadratic)
{
    Fixture f(8);
    f.launch(60);

    channel::RngChannelConfig quick;
    quick.trials = 6;
    quick.detect_min = 3;
    channel::RngChannel pair_chan(*f.platform, quick);
    const VerifyResult pairwise =
        verifyPairwise(*f.platform, pair_chan, f.ids);
    EXPECT_EQ(pairwise.group_tests, 60u * 59u / 2u);

    const stats::PairConfusion pc =
        stats::comparePairs(pairwise.cluster_of, f.truth);
    EXPECT_EQ(pc.fp, 0u);
    EXPECT_EQ(pc.fn, 0u);

    channel::RngChannel chan(*f.platform);
    const VerifyResult scalable = verifyScalable(
        *f.platform, chan, f.ids, f.fp_keys, f.class_keys);
    EXPECT_LT(scalable.group_tests * 20, pairwise.group_tests);
    EXPECT_LT(scalable.elapsed, pairwise.elapsed);
    EXPECT_LT(scalable.cost_usd, pairwise.cost_usd);
}

TEST(VerifyPairwiseMemBus, WorksButIsSlow)
{
    Fixture f(9);
    f.launch(20);
    channel::MemBusChannel chan(*f.platform);
    const VerifyResult result =
        verifyPairwiseMemBus(*f.platform, chan, f.ids);
    // 190 screening tests plus confirmation retests of positives.
    EXPECT_GE(result.group_tests, 190u);
    EXPECT_GE(result.elapsed, chan.testDuration() * 190);
    // Each truly co-located pair costs two confirmations on top of
    // its screen; false-positive screens add a handful more.
    EXPECT_LE(result.group_tests, 190u + 2u * 190u);
    // The channel is noisy (2% FP / trial), so allow a few errors.
    const stats::PairConfusion pc =
        stats::comparePairs(result.cluster_of, f.truth);
    EXPECT_LE(pc.fn, 2u);
}

TEST(SingleInstanceElimination, FailsInFaaS)
{
    // Every FaaS instance shares its host with siblings, so SIE cannot
    // eliminate anything (Section 4.3).
    Fixture f(10);
    f.launch(300);
    channel::RngChannel chan(*f.platform);
    const auto survivors =
        singleInstanceElimination(*f.platform, chan, f.ids);
    // At most the tail host of the spread holds a lone instance; SIE
    // removes essentially nothing.
    EXPECT_GE(survivors.size() + 2, f.ids.size());
}

TEST(SingleInstanceElimination, WorksWhenInstancesAreAlone)
{
    // Control: single instances on distinct hosts are all eliminated.
    Fixture f(11);
    f.launch(3);
    std::map<std::uint64_t, int> host_counts;
    for (const auto h : f.truth)
        ++host_counts[h];
    bool all_alone = true;
    for (const auto &[h, c] : host_counts)
        all_alone &= (c == 1);
    if (!all_alone)
        GTEST_SKIP() << "seed placed instances together";
    channel::RngChannel chan(*f.platform);
    const auto survivors =
        singleInstanceElimination(*f.platform, chan, f.ids);
    EXPECT_TRUE(survivors.empty());
}

} // namespace
} // namespace eaao::core
