/**
 * @file
 * Unit tests for the drift-aware host registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/host_registry.hpp"
#include "faas/platform.hpp"

namespace eaao::core {
namespace {

Gen1Reading
reading(const char *model, double tboot, double wall)
{
    Gen1Reading r;
    r.cpu_model = model;
    r.frequency_hz = 2.0e9;
    r.tboot_s = tboot;
    r.wall_s = wall;
    return r;
}

TEST(HostRegistry, ObserveRegistersAndMatches)
{
    HostRegistry registry;
    const auto [id1, fresh1] =
        registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 100.0, 0));
    EXPECT_TRUE(fresh1);
    const auto [id2, fresh2] = registry.observe(
        reading("Intel Xeon CPU @ 2.00GHz", 100.2, 60));
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(id1, id2);
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.host(id1).history.size(), 2u);
}

TEST(HostRegistry, DistinguishesModelsAndBuckets)
{
    HostRegistry registry;
    registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 100.0, 0));
    registry.observe(reading("Intel Xeon CPU @ 2.20GHz", 100.0, 0));
    registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 500.0, 0));
    EXPECT_EQ(registry.size(), 3u);
}

TEST(HostRegistry, MatchPrefersClosestCandidate)
{
    HostRegistryConfig cfg;
    cfg.tolerance_buckets = 2;
    HostRegistry registry(cfg);
    const auto [a, fa] =
        registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 100.0, 0));
    const auto [b, fb] =
        registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 104.0, 0));
    ASSERT_NE(a, b);
    const auto m =
        registry.match(reading("Intel Xeon CPU @ 2.00GHz", 103.4, 10));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, b);
}

TEST(HostRegistry, DriftImprovesWithObservations)
{
    HostRegistry registry;
    const double slope = 2.0 / 86400.0; // 2 s/day, a fast drifter
    TrackedHostId id = 0;
    for (int h = 0; h <= 24; ++h) {
        const double wall = h * 3600.0;
        const auto [got, fresh] = registry.observe(reading(
            "Intel Xeon CPU @ 2.00GHz", 100.0 + slope * wall, wall));
        if (h == 0) {
            EXPECT_TRUE(fresh);
            id = got;
        } else {
            EXPECT_FALSE(fresh) << "hour " << h;
            EXPECT_EQ(got, id);
        }
    }
    EXPECT_NEAR(registry.host(id).drift_per_s, slope, slope * 0.02);

    // Three days later the raw bucket is 6 s off, but extrapolation
    // still matches.
    const double wall = 4.0 * 86400.0;
    const auto m = registry.match(reading(
        "Intel Xeon CPU @ 2.00GHz", 100.0 + slope * wall, wall));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, id);
}

TEST(HostRegistry, ExpirationForecastNeedsHistory)
{
    HostRegistry registry;
    const auto [id, fresh] =
        registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 100.0, 0));
    EXPECT_FALSE(registry.expirationSeconds(id).has_value());
    registry.observe(
        reading("Intel Xeon CPU @ 2.00GHz", 100.5, 36000.0));
    const auto exp = registry.expirationSeconds(id);
    ASSERT_TRUE(exp.has_value());
    EXPECT_GT(*exp, 0.0);
}

TEST(HostRegistry, StaleHostsByLastSeen)
{
    HostRegistry registry;
    registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 100.0, 0));
    registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 500.0, 50));
    const auto stale = registry.staleHosts(25.0);
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(registry.host(stale[0]).last_tboot_s, 100.0);
}

TEST(HostRegistry, SerializeRoundTrip)
{
    HostRegistryConfig cfg;
    cfg.p_boot_s = 0.5;
    cfg.tolerance_buckets = 3;
    HostRegistry registry(cfg);
    registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 100.0, 0));
    registry.observe(reading("Intel Xeon CPU @ 2.00GHz", 100.1, 3600));
    registry.observe(reading("Intel Xeon CPU @ 2.20GHz", 7000.0, 10));

    const std::string text = registry.serialize();
    const auto loaded = HostRegistry::deserialize(text);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->size(), 2u);

    // Matching behaviour survives the round trip.
    const auto m = loaded->match(
        reading("Intel Xeon CPU @ 2.20GHz", 7000.2, 600.0));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(loaded->host(*m).cpu_model, "Intel Xeon CPU @ 2.20GHz");
}

TEST(HostRegistry, DeserializeRejectsGarbage)
{
    EXPECT_FALSE(HostRegistry::deserialize("").has_value());
    EXPECT_FALSE(HostRegistry::deserialize("bogus v1 1 1").has_value());
    EXPECT_FALSE(HostRegistry::deserialize(
                     "eaao-host-registry v2 1.0 1\n")
                     .has_value());
    EXPECT_FALSE(HostRegistry::deserialize(
                     "eaao-host-registry v1 1.0 1\nnot-a-host-line\n")
                     .has_value());
}

TEST(HostRegistry, TracksRealPlatformHostsAcrossLaunches)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 55;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);

    HostRegistry registry;
    std::set<hw::HostId> true_hosts;
    for (int launch = 0; launch < 3; ++launch) {
        const auto ids = p.connect(svc, 300);
        for (const auto id : ids) {
            faas::SandboxView sbx = p.sandbox(id);
            registry.observe(readGen1Median(sbx, 15));
            true_hosts.insert(p.oracleHostOf(id));
        }
        p.disconnectAll(svc);
        p.advance(sim::Duration::minutes(45));
    }
    // Tracked count matches the true union of hosts (small slack for
    // rounding-boundary flapping).
    EXPECT_NEAR(static_cast<double>(registry.size()),
                static_cast<double>(true_hosts.size()), 3.0);
}

} // namespace
} // namespace eaao::core
