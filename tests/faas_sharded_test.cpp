/**
 * @file
 * Tests for the sharded platform: fixed lane partition, byte-equality
 * across (shards, threads) groupings, capacity conservation through
 * the window barriers, and the planted cross-lane faults being caught
 * by the shard-equality oracle and shrinkable to tiny replays.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faas/sharded.hpp"
#include "testkit/invariants.hpp"
#include "testkit/runner.hpp"
#include "testkit/scenario.hpp"
#include "testkit/shrink.hpp"

namespace eaao::faas {
namespace {

/** Two accounts on different lanes, hot bursts, barrier straddling. */
testkit::Scenario
crossLaneScenario(std::uint32_t fault = 0)
{
    testkit::Scenario sc;
    sc.seed = 20240;
    sc.profile = 0;
    sc.host_count = 550; // 5 shards -> 5 lanes
    sc.hot_burst_min = 8;
    sc.fault = fault;
    sc.accounts.push_back({0, 1000});
    sc.accounts.push_back({3, 1000});
    sc.services.push_back({0, 0, 1});
    sc.services.push_back({1, 0, 1});
    using K = testkit::ScenarioStep::Kind;
    sc.steps.push_back({K::Connect, 0, 40, 0});
    sc.steps.push_back({K::Burst, 0, 12, 200});
    sc.steps.push_back({K::Advance, 0, 30'000, 0}); // exactly one window
    sc.steps.push_back({K::Burst, 1, 12, 200});
    sc.steps.push_back({K::Connect, 1, 30, 0});
    sc.steps.push_back({K::Advance, 0, 910'000, 0}); // past idle_max
    sc.steps.push_back({K::SpendProbe, 0, 0, 0});
    return sc;
}

ShardedConfig
smallConfig(std::uint32_t shards, unsigned threads)
{
    ShardedConfig cfg;
    cfg.profile.host_count = 550;
    cfg.seed = 77;
    cfg.shards = shards;
    cfg.threads = threads;
    return cfg;
}

TEST(ShardedPlatform, LanePartitionIsFixed)
{
    // The lane count and the account->lane map are platform
    // properties: they must not depend on the shards/threads knobs.
    std::vector<std::uint32_t> lanes_seen;
    for (const std::uint32_t shards : {1u, 2u, 5u, 16u}) {
        ShardedPlatform p(smallConfig(shards, shards));
        EXPECT_EQ(p.laneCount(), 5u); // min(16, ceil(550/110))
        const AccountId pinned = p.createAccount(3u, 1000);
        const AccountId hashed = p.createAccount({}, 1000);
        if (lanes_seen.empty()) {
            lanes_seen = {p.laneOfAccount(pinned), p.laneOfAccount(hashed)};
            EXPECT_EQ(lanes_seen[0], 3u); // home shard 3 -> lane 3 % 5
        } else {
            EXPECT_EQ(p.laneOfAccount(pinned), lanes_seen[0]);
            EXPECT_EQ(p.laneOfAccount(hashed), lanes_seen[1]);
        }
    }
}

TEST(ShardedPlatform, LogByteIdenticalAcrossGroupings)
{
    const testkit::Scenario sc = crossLaneScenario();
    testkit::ShardedRunOptions base;
    const std::string want = runScenarioSharded(sc, base);
    ASSERT_FALSE(want.empty());
    // The scenario must actually exercise the exchange: at least one
    // fold digest line.
    EXPECT_NE(want.find("window="), std::string::npos);

    struct Arm
    {
        std::uint32_t shards;
        unsigned threads;
    };
    for (const Arm arm : {Arm{2, 1}, Arm{3, 2}, Arm{5, 4}, Arm{16, 8}}) {
        testkit::ShardedRunOptions ro;
        ro.shards = arm.shards;
        ro.threads = arm.threads;
        EXPECT_EQ(runScenarioSharded(sc, ro), want)
            << "shards=" << arm.shards << " threads=" << arm.threads;
    }
}

TEST(ShardedPlatform, CommittedCapacityConservedAtBarriers)
{
    // After run() every barrier has folded every lane delta, so the
    // committed table must equal the live instances exactly.
    ShardedConfig cfg = smallConfig(2, 2);
    ShardedPlatform p(cfg);
    const AccountId a0 = p.createAccount(0u, 1000);
    const AccountId a1 = p.createAccount(4u, 1000);
    const ServiceId s0 = p.deployService(a0, ExecEnv::Gen1);
    const ServiceId s1 = p.deployService(a1, ExecEnv::Gen1);

    std::vector<ShardOp> ops;
    ShardOp op;
    op.kind = ShardOp::Kind::Connect;
    op.service = s0;
    op.a = 25;
    ops.push_back(op);
    op.service = s1;
    op.a = 40;
    ops.push_back(op);
    p.run(std::move(ops), sim::SimTime() + sim::Duration::minutes(2));

    // One account per lane, so each is that lane's local account 0.
    const std::uint32_t live =
        p.laneOrchestrator(p.laneOfAccount(a0)).account(0).live_count +
        p.laneOrchestrator(p.laneOfAccount(a1)).account(0).live_count;
    EXPECT_GE(live, 65u); // every connection got an instance

    double committed_vcpus = 0.0;
    double committed_mem = 0.0;
    for (std::uint32_t h = 0; h < p.fleet().size(); ++h) {
        committed_vcpus += p.committedLoad().vcpus(h);
        committed_mem += p.committedLoad().memGb(h);
    }
    EXPECT_DOUBLE_EQ(committed_vcpus,
                     static_cast<double>(live) * sizes::kSmall.vcpus);
    EXPECT_DOUBLE_EQ(committed_mem,
                     static_cast<double>(live) * sizes::kSmall.memory_gb);
}

TEST(ShardedPlatform, WindowFaultCaughtByShardOracle)
{
    testkit::InvariantOptions opts;
    opts.threads = 2;
    opts.check_reference = false; // isolate the shard oracle
    opts.check_obs = false;
    opts.check_threads = false;
    opts.check_events = false;

    for (const std::uint32_t fault : {3u, 4u}) {
        const std::vector<testkit::Violation> violations =
            testkit::checkInvariants(crossLaneScenario(fault), opts);
        ASSERT_FALSE(violations.empty()) << "fault " << fault;
        EXPECT_EQ(violations[0].oracle, "shards") << "fault " << fault;
    }

    // And the clean scenario holds.
    EXPECT_TRUE(testkit::checkInvariants(crossLaneScenario(), opts).empty());
}

TEST(ShardedPlatform, WindowFaultsShrinkToTinyReplays)
{
    testkit::InvariantOptions opts;
    opts.threads = 2;
    opts.check_reference = false;
    opts.check_obs = false;
    opts.check_threads = false;
    opts.check_events = false;

    for (const std::uint32_t fault : {3u, 4u}) {
        const testkit::Scenario failing = crossLaneScenario(fault);
        const testkit::FailurePredicate still_fails =
            [&opts](const testkit::Scenario &candidate) {
                return !testkit::checkInvariants(candidate, opts).empty();
            };
        const testkit::ShrinkResult shrunk =
            testkit::shrink(failing, still_fails);
        EXPECT_LE(shrunk.scenario.steps.size(), 3u) << "fault " << fault;
        // The shrunk reproducer still fails, and round-trips.
        EXPECT_FALSE(
            testkit::checkInvariants(shrunk.scenario, opts).empty());
        testkit::Scenario reparsed;
        std::string error;
        ASSERT_TRUE(testkit::Scenario::parse(shrunk.scenario.serialize(),
                                             reparsed, error))
            << error;
    }
}

TEST(ShardedPlatform, GeneratedScenariosHoldShardEquality)
{
    // The generator's shard-aware scenarios (pins 0..4, cross-shard
    // burst pairs, window-multiple advances) pass the oracle.
    testkit::InvariantOptions opts;
    opts.threads = 2;
    opts.check_reference = false;
    opts.check_obs = false;
    opts.check_threads = false;
    opts.check_events = false;
    for (std::uint64_t i = 0; i < 3; ++i) {
        const testkit::Scenario sc = testkit::generateScenario(0xABCD, i);
        const std::vector<testkit::Violation> violations =
            testkit::checkInvariants(sc, opts);
        for (const testkit::Violation &v : violations)
            ADD_FAILURE() << "scenario " << i << " [" << v.oracle << "] "
                          << v.detail;
    }
}

} // namespace
} // namespace eaao::faas
