/**
 * @file
 * Unit tests for the deterministic parallel trial harness.
 *
 * The determinism contract: the same campaign seed must produce
 * byte-identical aggregated results no matter how many worker threads
 * run the trials.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "exp/trial_runner.hpp"
#include "sim/event_queue.hpp"
#include "stats/summary.hpp"

namespace eaao::exp {
namespace {

/** A trial body exercising the per-trial Rng and an EventQueue. */
double
simulateTrial(TrialContext &trial)
{
    sim::EventQueue eq;
    double acc = 0.0;
    for (int burst = 0; burst < 4; ++burst) {
        eq.scheduleAfter(
            sim::Duration::millis(
                static_cast<std::int64_t>(trial.rng.uniformInt(
                    std::uint64_t{50})) + 1),
            [&acc, &trial] { acc += trial.rng.uniform(); });
    }
    eq.run();
    return acc + static_cast<double>(trial.index) * 1e-9;
}

TEST(TrialRunner, SameSeedByteIdenticalAcrossThreadCounts)
{
    constexpr std::size_t kTrials = 64;
    constexpr std::uint64_t kSeed = 0xfeedface;

    const auto r1 = runTrials(kTrials, kSeed, simulateTrial, 1);
    const auto r2 = runTrials(kTrials, kSeed, simulateTrial, 2);
    const auto r8 = runTrials(kTrials, kSeed, simulateTrial, 8);

    ASSERT_EQ(r1.size(), kTrials);
    ASSERT_EQ(r2.size(), kTrials);
    ASSERT_EQ(r8.size(), kTrials);
    EXPECT_EQ(0, std::memcmp(r1.data(), r2.data(),
                             kTrials * sizeof(double)));
    EXPECT_EQ(0, std::memcmp(r1.data(), r8.data(),
                             kTrials * sizeof(double)));

    // The aggregated (merged) statistics are bit-identical too.
    auto reduce = [](const std::vector<double> &xs) {
        std::vector<stats::OnlineStats> parts(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i)
            parts[i].add(xs[i]);
        return stats::mergeStats(parts);
    };
    const auto s1 = reduce(r1);
    const auto s8 = reduce(r8);
    EXPECT_EQ(s1.count(), s8.count());
    EXPECT_EQ(s1.mean(), s8.mean());
    EXPECT_EQ(s1.variance(), s8.variance());
    EXPECT_EQ(s1.sum(), s8.sum());
}

TEST(TrialRunner, DifferentSeedsDiffer)
{
    const auto a = runTrials(8, 1, simulateTrial, 4);
    const auto b = runTrials(8, 2, simulateTrial, 4);
    EXPECT_NE(0, std::memcmp(a.data(), b.data(), 8 * sizeof(double)));
}

TEST(TrialRunner, ContextCarriesIndexCountSeedAndDistinctStreams)
{
    struct Snapshot
    {
        std::size_t index = 0;
        std::size_t trials = 0;
        std::uint64_t campaign_seed = 0;
        std::uint64_t first_draw = 0;
        std::uint64_t trial_seed = 0;
    };
    const auto snaps = runTrials(
        16, 99,
        [](TrialContext &trial) {
            Snapshot s;
            s.index = trial.index;
            s.trials = trial.trials;
            s.campaign_seed = trial.campaign_seed;
            s.first_draw = trial.rng();
            s.trial_seed = trial.trialSeed();
            return s;
        },
        4);
    ASSERT_EQ(snaps.size(), 16u);
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        EXPECT_EQ(snaps[i].index, i);
        EXPECT_EQ(snaps[i].trials, 16u);
        EXPECT_EQ(snaps[i].campaign_seed, 99u);
        for (std::size_t j = 0; j < i; ++j) {
            EXPECT_NE(snaps[i].first_draw, snaps[j].first_draw);
            EXPECT_NE(snaps[i].trial_seed, snaps[j].trial_seed);
        }
    }
}

TEST(TrialRunner, ExceptionInTrialPropagates)
{
    EXPECT_THROW(
        runTrials(
            32, 7,
            [](TrialContext &trial) -> int {
                if (trial.index == 13)
                    throw std::runtime_error("trial 13 exploded");
                return static_cast<int>(trial.index);
            },
            4),
        std::runtime_error);

    // Serial path propagates too.
    EXPECT_THROW(runTrials(
                     4, 7,
                     [](TrialContext &) -> int {
                         throw std::runtime_error("serial failure");
                     },
                     1),
                 std::runtime_error);
}

TEST(TrialRunner, ZeroTrialsReturnsEmptyWithoutCallingBody)
{
    std::atomic<int> calls{0};
    const auto out = runTrials(
        0, 42,
        [&calls](TrialContext &) {
            calls.fetch_add(1);
            return 0;
        },
        8);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(calls.load(), 0);
}

TEST(TrialRunner, MoreThreadsThanTrialsIsFine)
{
    const auto out = runTrials(
        3, 5, [](TrialContext &trial) { return trial.index * 2; }, 16);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 2u);
    EXPECT_EQ(out[2], 4u);
}

} // namespace
} // namespace eaao::exp
