/**
 * @file
 * Tests for the eaao-snap v1 container: primitive encode/decode
 * round-trips, the bounds-checked reader, and the reject paths a
 * driver turns into exit 2 — truncation, bad magic, a future format
 * version, bit flips caught by the section checksums, and duplicate
 * section ids.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "snap/format.hpp"
#include "snap/snapshotter.hpp"

namespace eaao::snap {
namespace {

std::vector<std::uint8_t>
twoSectionImage()
{
    SectionWriter a;
    a.putU32(7);
    a.putU64(0xdeadbeefcafef00dULL);
    a.putString("hello");
    SectionWriter b;
    b.putF64(-0.0);
    b.putI64(-42);
    SnapshotWriter w;
    w.addSection(1, a.take());
    w.addSection(2, b.take());
    return w.finish();
}

TEST(SnapFormat, PrimitivesRoundTripBitExact)
{
    SectionWriter out;
    out.putU8(0xab);
    out.putU32(0x01020304u);
    out.putU64(~0ULL);
    out.putI64(std::numeric_limits<std::int64_t>::min());
    out.putF64(-0.0);
    out.putF64(std::numeric_limits<double>::quiet_NaN());
    out.putF64(0.1); // not exactly representable: bit pattern must hold
    out.putString("spend=1.00000000000000001");

    SectionReader in(out.bytes().data(), out.bytes().size());
    std::uint8_t u8 = 0;
    std::uint32_t u32 = 0;
    std::uint64_t u64 = 0;
    std::int64_t i64 = 0;
    double zero = 1.0, nan = 0.0, tenth = 0.0;
    std::string s;
    ASSERT_TRUE(in.getU8(u8));
    ASSERT_TRUE(in.getU32(u32));
    ASSERT_TRUE(in.getU64(u64));
    ASSERT_TRUE(in.getI64(i64));
    ASSERT_TRUE(in.getF64(zero));
    ASSERT_TRUE(in.getF64(nan));
    ASSERT_TRUE(in.getF64(tenth));
    ASSERT_TRUE(in.getString(s));
    EXPECT_TRUE(in.atEnd());

    EXPECT_EQ(u8, 0xab);
    EXPECT_EQ(u32, 0x01020304u);
    EXPECT_EQ(u64, ~0ULL);
    EXPECT_EQ(i64, std::numeric_limits<std::int64_t>::min());
    EXPECT_TRUE(std::signbit(zero) && zero == 0.0);
    EXPECT_TRUE(std::isnan(nan));
    std::uint64_t bits = 0;
    std::memcpy(&bits, &tenth, 8);
    EXPECT_EQ(bits, 0x3fb999999999999aULL);
    EXPECT_EQ(s, "spend=1.00000000000000001");
}

TEST(SnapFormat, F64ArrayRoundTripsAndBoundsChecks)
{
    const std::vector<double> vals = {
        1.0, -0.0, 0.1, std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::denorm_min()};
    SectionWriter out;
    out.putF64Array(vals.data(), vals.size());

    SectionReader in(out.bytes().data(), out.bytes().size());
    std::vector<double> got(vals.size());
    ASSERT_TRUE(in.getF64Array(got.data(), got.size()));
    EXPECT_EQ(0,
              std::memcmp(vals.data(), got.data(), vals.size() * 8));
    EXPECT_TRUE(in.atEnd());

    SectionReader short_in(out.bytes().data(), out.bytes().size() - 1);
    std::vector<double> over(vals.size());
    EXPECT_FALSE(short_in.getF64Array(over.data(), over.size()));
}

TEST(SnapFormat, ReaderRefusesTruncatedReads)
{
    SectionWriter out;
    out.putU32(5);
    SectionReader in(out.bytes().data(), out.bytes().size());
    std::uint64_t v = 0;
    EXPECT_FALSE(in.getU64(v)); // only 4 bytes present
    std::uint32_t u = 0;
    ASSERT_TRUE(in.getU32(u));
    EXPECT_EQ(u, 5u);
    EXPECT_FALSE(in.getU8(*reinterpret_cast<std::uint8_t *>(&u)));
    EXPECT_EQ(in.take(1), nullptr);
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(SnapFormat, StringLengthIsBoundsChecked)
{
    SectionWriter out;
    out.putU64(1000); // claims 1000 bytes, provides none
    SectionReader in(out.bytes().data(), out.bytes().size());
    std::string s;
    EXPECT_FALSE(in.getString(s));
}

TEST(SnapFormat, ParseRoundTripsSections)
{
    const std::vector<std::uint8_t> image = twoSectionImage();
    SnapshotReader r;
    std::string error;
    ASSERT_TRUE(r.parse(image, error)) << error;
    ASSERT_EQ(r.sectionIds(), (std::vector<std::uint32_t>{1, 2}));
    const SectionView *s1 = r.section(1);
    ASSERT_NE(s1, nullptr);
    SectionReader in(s1->data, s1->size);
    std::uint32_t u32 = 0;
    std::uint64_t u64 = 0;
    std::string s;
    ASSERT_TRUE(in.getU32(u32) && in.getU64(u64) && in.getString(s));
    EXPECT_EQ(u32, 7u);
    EXPECT_EQ(u64, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(s, "hello");
    EXPECT_EQ(r.section(99), nullptr);
}

TEST(SnapFormat, ParseIsThreadCountInvariant)
{
    const std::vector<std::uint8_t> image = twoSectionImage();
    SnapshotReader serial, fanned;
    std::string e1, e2;
    ASSERT_TRUE(serial.parse(image, e1, 1));
    ASSERT_TRUE(fanned.parse(image, e2, 8));
    EXPECT_EQ(serial.sectionIds(), fanned.sectionIds());
}

TEST(SnapFormat, RejectsTruncatedImages)
{
    const std::vector<std::uint8_t> image = twoSectionImage();
    std::string error;
    SnapshotReader r;

    std::vector<std::uint8_t> tiny(image.begin(), image.begin() + 10);
    EXPECT_FALSE(r.parse(tiny, error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;

    // Drop the tail: the section table now points past the end.
    std::vector<std::uint8_t> cut(image.begin(), image.end() - 8);
    EXPECT_FALSE(r.parse(cut, error));
    EXPECT_NE(error.find("section table out of bounds"),
              std::string::npos)
        << error;
}

TEST(SnapFormat, RejectsBadMagic)
{
    std::vector<std::uint8_t> image = twoSectionImage();
    image[0] ^= 0xff;
    std::string error;
    SnapshotReader r;
    EXPECT_FALSE(r.parse(image, error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(SnapFormat, RejectsNewerFormatVersion)
{
    std::vector<std::uint8_t> image = twoSectionImage();
    image[8] = static_cast<std::uint8_t>(kFormatVersion + 1); // LE u32
    std::string error;
    SnapshotReader r;
    EXPECT_FALSE(r.parse(image, error));
    EXPECT_NE(error.find("newer than this binary supports"),
              std::string::npos)
        << error;

    image[8] = 0;
    EXPECT_FALSE(r.parse(image, error));
    EXPECT_NE(error.find("version 0"), std::string::npos) << error;
}

TEST(SnapFormat, ChecksumCatchesEveryPayloadBitFlip)
{
    const std::vector<std::uint8_t> clean = twoSectionImage();
    // Flip one bit in each payload byte in turn; parse must fail with
    // a checksum mismatch naming the owning section every time.
    constexpr std::size_t kHeader = 24;
    const std::size_t payload_end = clean.size() - 2 * 32;
    for (std::size_t off = kHeader; off < payload_end; ++off) {
        std::vector<std::uint8_t> image = clean;
        image[off] ^= 0x01;
        std::string error;
        SnapshotReader r;
        ASSERT_FALSE(r.parse(image, error)) << "offset " << off;
        ASSERT_NE(error.find("checksum mismatch"), std::string::npos)
            << error;
    }
}

TEST(SnapFormat, RejectsDuplicateSectionIds)
{
    std::vector<std::uint8_t> image = twoSectionImage();
    // Rewrite section 2's table id (first u32 of the second entry) to 1.
    const std::size_t table = image.size() - 2 * 32;
    image[table + 32] = 1;
    std::string error;
    SnapshotReader r;
    EXPECT_FALSE(r.parse(image, error));
    EXPECT_NE(error.find("duplicate section"), std::string::npos) << error;
}

TEST(SnapFormat, FileRoundTripAndMissingFile)
{
    const std::vector<std::uint8_t> image = twoSectionImage();
    const std::string path =
        ::testing::TempDir() + "/snap_format_roundtrip.bin";
    std::string error;
    ASSERT_TRUE(Snapshotter::writeFile(path, image, error)) << error;
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(Snapshotter::readFile(path, back, error)) << error;
    EXPECT_EQ(back, image);
    std::remove(path.c_str());

    EXPECT_FALSE(
        Snapshotter::readFile("/nonexistent/eaao.snap", back, error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

} // namespace
} // namespace eaao::snap
