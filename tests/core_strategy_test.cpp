/**
 * @file
 * Unit tests for launch strategies, campaigns and coverage measurement.
 */

#include <gtest/gtest.h>

#include "core/strategy.hpp"

namespace eaao::core {
namespace {

faas::PlatformConfig
eastConfig(std::uint64_t seed = 1)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    return cfg;
}

TEST(LaunchAndObserve, CollectsFingerprintsForEveryInstance)
{
    faas::Platform p(eastConfig());
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    LaunchOptions opts;
    opts.instances = 100;
    const LaunchObservation obs = launchAndObserve(p, svc, opts);
    EXPECT_EQ(obs.ids.size(), 100u);
    EXPECT_EQ(obs.fp_keys.size(), 100u);
    EXPECT_EQ(obs.readings.size(), 100u);
    EXPECT_EQ(obs.class_keys.size(), 100u);
    // ~100/10.7 hosts.
    const auto apparent = obs.apparentHosts();
    EXPECT_GE(apparent.size(), 8u);
    EXPECT_LE(apparent.size(), 13u);
    // Disconnected afterwards by default.
    EXPECT_EQ(p.instanceInfo(obs.ids[0]).state,
              faas::InstanceState::Idle);
}

TEST(LaunchAndObserve, Gen2UsesRefinedFrequencyKeys)
{
    faas::Platform p(eastConfig(2));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen2);
    LaunchOptions opts;
    opts.instances = 50;
    const LaunchObservation obs = launchAndObserve(p, svc, opts);
    EXPECT_TRUE(obs.readings.empty());
    EXPECT_EQ(obs.fp_keys.size(), 50u);
    // Gen 2 class keys equal the fingerprint keys.
    EXPECT_EQ(obs.class_keys, obs.fp_keys);
}

TEST(PrimeService, FootprintGrowsAndSaturates)
{
    faas::Platform p(eastConfig(3));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    PrimeOptions opts; // 6 launches, 10 min apart, 800 instances
    const auto launches = primeService(p, svc, opts);
    ASSERT_EQ(launches.size(), 6u);

    const std::size_t first = launches.front().apparentHosts().size();
    const std::size_t last = launches.back().apparentHosts().size();
    EXPECT_NEAR(static_cast<double>(first), 75.0, 6.0);
    EXPECT_GT(last, first * 2);

    // Final launch stays connected.
    EXPECT_EQ(p.instanceInfo(launches.back().ids[0]).state,
              faas::InstanceState::Active);
}

TEST(OptimizedCampaign, OccupiesLargeFractionOfFleet)
{
    faas::Platform p(eastConfig(4));
    const auto attacker = p.createAccount();
    CampaignConfig cfg; // 6 services x 6 launches x 800
    const CampaignResult result = runOptimizedCampaign(p, attacker, cfg);

    EXPECT_EQ(result.services.size(), 6u);
    EXPECT_EQ(result.final_instances.size(), 6u * 800u);
    const double fraction =
        static_cast<double>(result.occupied_hosts.size()) /
        static_cast<double>(p.fleet().size());
    EXPECT_GT(fraction, 0.45);
    EXPECT_LT(fraction, 0.95);
    EXPECT_GT(result.cost_usd, 5.0);
    EXPECT_LT(result.cost_usd, 80.0);
}

TEST(NaiveCampaign, StaysInHomeShard)
{
    faas::Platform p(eastConfig(5));
    const auto attacker = p.createAccount(0);
    const CampaignResult result =
        runNaiveCampaign(p, attacker, 6, 800);
    EXPECT_EQ(result.final_instances.size(), 4800u);
    for (const hw::HostId h : result.occupied_hosts)
        EXPECT_EQ(p.fleet().shardOf(h), 0u);
}

TEST(Coverage, OracleCountsCoveredVictims)
{
    faas::Platform p(eastConfig(6));
    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(1);

    const CampaignResult attack = runOptimizedCampaign(
        p, attacker, CampaignConfig{});

    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    const auto vids = p.connect(vsvc, 100);
    const CoverageResult cov =
        measureCoverageOracle(p, attack.occupied_hosts, vids);
    EXPECT_EQ(cov.victim_instances, 100u);
    EXPECT_GT(cov.coverage(), 0.8); // optimized attack covers well
}

TEST(Coverage, ChannelMeasurementAgreesWithOracle)
{
    faas::Platform p(eastConfig(7));
    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(1);

    CampaignConfig cfg;
    cfg.services = 3; // keep the test fast
    const CampaignResult attack = runOptimizedCampaign(p, attacker, cfg);

    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    LaunchOptions vopts;
    vopts.instances = 60;
    vopts.disconnect_after = false;
    const LaunchObservation vobs = launchAndObserve(p, vsvc, vopts);

    const CoverageResult oracle =
        measureCoverageOracle(p, attack.occupied_hosts, vobs.ids);
    channel::RngChannel chan(p);
    const CoverageResult channel = measureCoverageViaChannel(
        p, chan, attack, vobs.ids, vobs.fp_keys, vobs.class_keys);

    EXPECT_EQ(channel.victim_instances, oracle.victim_instances);
    EXPECT_NEAR(channel.coverage(), oracle.coverage(), 0.05);
}

TEST(Coverage, NaiveCrossShardIsZero)
{
    faas::Platform p(eastConfig(8));
    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(2);
    const CampaignResult attack = runNaiveCampaign(p, attacker, 6, 800);

    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    const auto vids = p.connect(vsvc, 100);
    const CoverageResult cov =
        measureCoverageOracle(p, attack.occupied_hosts, vids);
    EXPECT_EQ(cov.covered_instances, 0u);
}

TEST(Coverage, NaiveSameShardIsHigh)
{
    faas::Platform p(eastConfig(9));
    const auto attacker = p.createAccount(1);
    const auto victim = p.createAccount(1);
    const CampaignResult attack = runNaiveCampaign(p, attacker, 6, 800);

    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    const auto vids = p.connect(vsvc, 100);
    const CoverageResult cov =
        measureCoverageOracle(p, attack.occupied_hosts, vids);
    EXPECT_GT(cov.coverage(), 0.7);
}

TEST(ExploreClusterSize, DiscoversMostOfTheFleetAndFlattens)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usWest1();
    cfg.seed = 10;
    faas::Platform p(cfg);
    std::vector<faas::AccountId> accounts;
    for (std::uint32_t shard = 0; shard < 2; ++shard)
        accounts.push_back(p.createAccount(shard));

    PrimeOptions prime;
    prime.launch.instances = 400;
    const ExplorationResult result =
        exploreClusterSize(p, accounts, 3, 4, prime);

    ASSERT_EQ(result.cumulative_unique.size(), 2u * 3u * 4u);
    // Monotone non-decreasing with decreasing increments at the tail.
    for (std::size_t i = 1; i < result.cumulative_unique.size(); ++i) {
        EXPECT_GE(result.cumulative_unique[i],
                  result.cumulative_unique[i - 1]);
    }
    const double fraction = static_cast<double>(result.total) /
                            static_cast<double>(p.fleet().size());
    EXPECT_GT(fraction, 0.6);
    EXPECT_LE(result.total, p.fleet().size());
}

} // namespace
} // namespace eaao::core
