/**
 * @file
 * Unit tests for the Section 6 mitigations: TSC defenses, the
 * contention detector, and co-location-resistant scheduling.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "core/freq_estimator.hpp"
#include "core/strategy.hpp"
#include "defense/detector.hpp"
#include "defense/tsc_defense.hpp"
#include "stats/clustering.hpp"

namespace eaao::defense {
namespace {

faas::PlatformConfig
config(std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 330;
    cfg.seed = seed;
    return cfg;
}

TEST(TscDefense, TrapEmulateHidesHostBootTime)
{
    faas::PlatformConfig cfg = config(1);
    cfg.tsc_defense.gen1 = Gen1TscPolicy::TrapEmulate;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 40);

    for (const auto id : ids) {
        faas::SandboxView sbx = p.sandbox(id);
        const core::Gen1Reading r = core::readGen1(sbx);
        // The derived "boot time" is near the container's start (now),
        // not days in the past like the host's real boot.
        EXPECT_GT(r.tboot_s, p.now().secondsF() - 4000.0);
        const double host_boot =
            p.fleet().host(p.oracleHostOf(id)).tsc().bootTime()
                .secondsF();
        EXPECT_GT(r.tboot_s - host_boot, 3000.0);
    }
}

TEST(TscDefense, TrapEmulateKillsCoLocationSignal)
{
    faas::PlatformConfig cfg = config(2);
    cfg.tsc_defense.gen1 = Gen1TscPolicy::TrapEmulate;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);

    core::LaunchOptions launch;
    launch.instances = 200;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(p, svc, launch);

    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));
    const auto pc = stats::comparePairs(obs.fp_keys, oracle);
    // Essentially no co-located pair still shares a fingerprint.
    EXPECT_LT(pc.recall(), 0.05);
}

TEST(TscDefense, CpuidMaskingForcesMeasuredFallback)
{
    faas::PlatformConfig cfg = config(3);
    cfg.tsc_defense.gen1_mask_cpuid = true;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 5);
    faas::SandboxView sbx = p.sandbox(ids[0]);
    EXPECT_EQ(sbx.cpuModelName(), "Virtual CPU");
    EXPECT_DOUBLE_EQ(core::reportedFrequencyHz(sbx), 0.0);
    // The measured method still works (the TSC itself is native).
    const auto est = core::measuredFrequencyHz(sbx);
    EXPECT_NEAR(est.mean_hz,
                p.fleet().host(p.oracleHostOf(ids[0])).tsc().trueHz(),
                5e3);
}

TEST(TscDefense, Gen2ScalingMasksRefinedFrequency)
{
    faas::PlatformConfig cfg = config(4);
    cfg.tsc_defense.gen2 = Gen2TscPolicy::OffsetAndScale;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen2);
    const auto ids = p.connect(svc, 50);

    std::set<double> frequencies;
    for (const auto id : ids) {
        faas::SandboxView sbx = p.sandbox(id);
        frequencies.insert(sbx.refinedTscFrequencyHz());
    }
    // Only per-SKU nominal values remain visible.
    EXPECT_LE(frequencies.size(), 6u);
    for (const double f : frequencies)
        EXPECT_DOUBLE_EQ(std::fmod(f, 1e6), 0.0); // nominal values
}

TEST(TscDefense, TimerCostReflectsPolicy)
{
    faas::PlatformConfig cfg = config(5);
    cfg.tsc_defense.gen1 = Gen1TscPolicy::TrapEmulate;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto g1 = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto g2 = p.deployService(acct, faas::ExecEnv::Gen2);
    const auto i1 = p.connect(g1, 1);
    const auto i2 = p.connect(g2, 1);
    EXPECT_EQ(p.sandbox(i1[0]).timerAccessCost(),
              cfg.tsc_defense.emulated_timer_cost);
    EXPECT_EQ(p.sandbox(i2[0]).timerAccessCost(),
              cfg.tsc_defense.native_timer_cost);
}

TEST(TscDefense, OverheadModelScalesWithTimerIntensity)
{
    TscDefenseConfig cfg;
    cfg.gen1 = Gen1TscPolicy::TrapEmulate;
    const WorkloadProfile light{"light", 1.0,
                                sim::Duration::millis(10)};
    const WorkloadProfile heavy{"heavy", 100.0,
                                sim::Duration::micros(100)};
    EXPECT_LT(timerOverheadFraction(cfg, light), 0.001);
    EXPECT_GT(timerOverheadFraction(cfg, heavy), 0.5);

    // No defense, no overhead.
    TscDefenseConfig off;
    EXPECT_DOUBLE_EQ(timerOverheadFraction(off, heavy), 0.0);
}

TEST(TscDefense, WorkloadCatalogIncludesDatabaseClass)
{
    std::size_t count = 0;
    const auto *profiles = timerSensitiveWorkloads(count);
    ASSERT_GE(count, 4u);
    TscDefenseConfig cfg;
    cfg.gen1 = Gen1TscPolicy::TrapEmulate;
    bool found_db = false;
    for (std::size_t i = 0; i < count; ++i) {
        if (std::string(profiles[i].name).find("database") !=
            std::string::npos) {
            found_db = true;
            // In the ballpark of the paper's Cassandra anecdote (43%).
            const double frac = timerOverheadFraction(cfg, profiles[i]);
            EXPECT_GT(frac, 0.2);
            EXPECT_LT(frac, 0.8);
        }
    }
    EXPECT_TRUE(found_db);
}

TEST(Detector, FlagsHostsOverThreshold)
{
    DetectorConfig cfg;
    cfg.burst_threshold = 10;
    ContentionDetector detector(cfg);
    const sim::SimTime t0;
    detector.recordBurst(t0, 7, {1, 2}, 60);
    detector.recordBurst(t0, 9, {1}, 5);
    const auto flagged = detector.flaggedHosts(t0);
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged[0], 7u);
    const auto accounts = detector.implicatedAccounts(t0);
    EXPECT_EQ(accounts, (std::set<faas::AccountId>{1, 2}));
}

TEST(Detector, WindowExpiryClearsFlags)
{
    DetectorConfig cfg;
    cfg.window = sim::Duration::minutes(10);
    cfg.burst_threshold = 10;
    ContentionDetector detector(cfg);
    const sim::SimTime t0;
    detector.recordBurst(t0, 3, {1, 2}, 60);
    EXPECT_EQ(detector.flaggedHosts(t0).size(), 1u);
    EXPECT_TRUE(detector
                    .flaggedHosts(t0 + sim::Duration::minutes(11))
                    .empty());
    EXPECT_EQ(detector.totalBursts(), 60u);
}

TEST(Detector, VerificationLightsUpTheDetector)
{
    faas::Platform p(config(6));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions launch;
    launch.instances = 200;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(p, svc, launch);

    ContentionDetector detector;
    channel::RngChannel chan(p);
    chan.attachDetector(&detector);
    chan.run({obs.ids[0], obs.ids[1]}, 2);
    // A single co-located test already exceeds the burst threshold
    // (60 contended trials on one host).
    if (p.oracleHostOf(obs.ids[0]) == p.oracleHostOf(obs.ids[1])) {
        EXPECT_FALSE(detector.flaggedHosts(p.now()).empty());
    }
    EXPECT_GT(detector.totalBursts(), 0u);
}

TEST(Isolation, ConfinesOptimizedCampaignToHomeShard)
{
    faas::PlatformConfig cfg = config(7);
    cfg.orchestrator.isolate_accounts = true;
    faas::Platform p(cfg);
    const auto attacker = p.createAccount(1);
    core::CampaignConfig campaign;
    campaign.services = 3;
    const auto attack = core::runOptimizedCampaign(p, attacker,
                                                   campaign);
    for (const hw::HostId h : attack.occupied_hosts)
        EXPECT_EQ(p.fleet().shardOf(h), 1u);
}

TEST(Isolation, CrossAccountCoverageIsZero)
{
    faas::PlatformConfig cfg = config(8);
    cfg.orchestrator.isolate_accounts = true;
    faas::Platform p(cfg);
    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(2);
    core::CampaignConfig campaign;
    campaign.services = 3;
    const auto attack = core::runOptimizedCampaign(p, attacker,
                                                   campaign);
    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    const auto vids = p.connect(vsvc, 100);
    const auto cov =
        core::measureCoverageOracle(p, attack.occupied_hosts, vids);
    EXPECT_EQ(cov.covered_instances, 0u);
}

} // namespace
} // namespace eaao::defense
