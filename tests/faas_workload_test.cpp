/**
 * @file
 * Unit tests for request routing, autoscaling and workload generation.
 */

#include <gtest/gtest.h>

#include <set>

#include "channel/activity.hpp"
#include "faas/platform.hpp"
#include "faas/workload.hpp"

namespace eaao::faas {
namespace {

PlatformConfig
smallConfig(std::uint64_t seed)
{
    PlatformConfig cfg;
    cfg.profile = DataCenterProfile::usEast1();
    cfg.profile.host_count = 330;
    cfg.seed = seed;
    return cfg;
}

TEST(RouteRequest, CreatesInstanceOnDemand)
{
    Platform p(smallConfig(1));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    const InstanceId id = p.orchestrator().routeRequest(
        svc, sim::Duration::millis(100));
    EXPECT_EQ(p.instanceInfo(id).state, InstanceState::Active);
    EXPECT_EQ(p.instanceInfo(id).in_flight, 1u);

    // After completion the instance idles (releases its CPU).
    p.advance(sim::Duration::millis(200));
    EXPECT_EQ(p.instanceInfo(id).state, InstanceState::Idle);
    EXPECT_EQ(p.instanceInfo(id).in_flight, 0u);
}

TEST(RouteRequest, HonorsConcurrencyLimitOfOne)
{
    Platform p(smallConfig(2));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    // Two overlapping requests need two instances at concurrency 1.
    const InstanceId a = p.orchestrator().routeRequest(
        svc, sim::Duration::seconds(10));
    const InstanceId b = p.orchestrator().routeRequest(
        svc, sim::Duration::seconds(10));
    EXPECT_NE(a, b);
}

TEST(RouteRequest, SharesInstanceAtHigherConcurrency)
{
    Platform p(smallConfig(3));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    p.orchestrator().setMaxConcurrency(svc, 8);
    std::set<InstanceId> used;
    for (int i = 0; i < 8; ++i) {
        used.insert(p.orchestrator().routeRequest(
            svc, sim::Duration::seconds(10)));
    }
    EXPECT_EQ(used.size(), 1u);
    used.insert(p.orchestrator().routeRequest(
        svc, sim::Duration::seconds(10)));
    EXPECT_EQ(used.size(), 2u);
}

TEST(RouteRequest, ReusesWarmInstanceBeforeCreating)
{
    Platform p(smallConfig(4));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    const InstanceId first = p.orchestrator().routeRequest(
        svc, sim::Duration::millis(100));
    p.advance(sim::Duration::seconds(30)); // idle but within the hold
    const InstanceId second = p.orchestrator().routeRequest(
        svc, sim::Duration::millis(100));
    EXPECT_EQ(first, second);
}

TEST(RouteRequest, ColdStartAfterReap)
{
    Platform p(smallConfig(5));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    const InstanceId first = p.orchestrator().routeRequest(
        svc, sim::Duration::millis(100));
    p.advance(sim::Duration::minutes(20)); // reaped
    EXPECT_EQ(p.instanceInfo(first).state, InstanceState::Terminated);
    const InstanceId second = p.orchestrator().routeRequest(
        svc, sim::Duration::millis(100));
    EXPECT_NE(first, second);
}

TEST(DriveLoad, SteadyLoadScalesToLittleLaw)
{
    Platform p(smallConfig(6));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);

    // 50 rps x 0.2 s => ~10 concurrently-busy instances (Little's law).
    sim::Rng rng(99);
    LoadSpec spec;
    spec.rps = 50.0;
    spec.mean_service_time = sim::Duration::millis(200);
    spec.span = sim::Duration::minutes(4);
    const WorkloadStats stats = driveLoad(p, svc, spec, rng);

    EXPECT_NEAR(static_cast<double>(stats.requests), 50.0 * 240.0,
                500.0);
    EXPECT_GE(stats.peak_concurrent, 10u);
    EXPECT_LE(stats.peak_concurrent, 40u);
    // The instance pool stabilizes near the concurrency level, far
    // below the request count.
    EXPECT_LT(stats.instances_used.size(), 80u);
    EXPECT_GE(stats.instances_used.size(), 10u);
}

TEST(DriveLoad, SurgeForcesScaleOut)
{
    Platform p(smallConfig(7));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);

    sim::Rng rng(100);
    LoadSpec low;
    low.rps = 5.0;
    low.span = sim::Duration::minutes(2);
    const auto before = driveLoad(p, svc, low, rng);

    LoadSpec surge;
    surge.rps = 20.0;
    surge.peak_rps = 400.0;
    surge.mean_service_time = sim::Duration::millis(500);
    surge.span = sim::Duration::minutes(3);
    const auto during = driveLoad(p, svc, surge, rng);

    EXPECT_GT(during.instances_used.size(),
              before.instances_used.size() * 4);
}

TEST(DriveLoad, BillingOnlyWhileProcessing)
{
    Platform p(smallConfig(8));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);

    sim::Rng rng(101);
    LoadSpec spec;
    spec.rps = 10.0;
    spec.mean_service_time = sim::Duration::millis(100);
    spec.span = sim::Duration::minutes(2);
    driveLoad(p, svc, spec, rng);
    p.advance(sim::Duration::minutes(20)); // all instances reaped

    // Busy time ~ requests x 0.1 s plus startup billing; way below
    // wall-clock x instances.
    const double rate =
        PricingModel{}.usdPerActiveSecond(sizes::kSmall);
    const double spend = p.accountSpendUsd(acct);
    EXPECT_GT(spend, 1200 * 0.04 * rate);
    EXPECT_LT(spend, 1200 * 2.0 * rate);
}

TEST(FloodRequests, ForcesWideScaleOut)
{
    Platform p(smallConfig(9));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    sim::Rng rng(102);
    const WorkloadStats stats =
        floodRequests(p, svc, 300, sim::Duration::seconds(30),
                      sim::Duration::millis(10), rng);
    EXPECT_EQ(stats.requests, 300u);
    // 30 s service time vs 3 s flood: essentially all concurrent.
    EXPECT_EQ(stats.instances_used.size(), 300u);
}

TEST(ActivityProbe, SeesCoLocatedExecution)
{
    Platform p(smallConfig(10));
    const auto acct = p.createAccount();
    const auto victim = p.deployService(acct, ExecEnv::Gen1);

    // Place a victim instance, find its host, put a foothold there by
    // launching until co-located (same account => same base hosts).
    const InstanceId vict = p.orchestrator().routeRequest(
        victim, sim::Duration::hours(2)); // long-running request
    const hw::HostId host = p.oracleHostOf(vict);

    const auto probe_svc = p.deployService(acct, ExecEnv::Gen1);
    const auto probes = p.connect(probe_svc, 60);
    InstanceId foothold = kNoInstance;
    for (const auto id : probes) {
        if (p.oracleHostOf(id) == host) {
            foothold = id;
            break;
        }
    }
    ASSERT_NE(foothold, kNoInstance) << "no co-located probe";

    channel::ActivityProbeConfig cfg;
    cfg.background_rate = 0.0;
    channel::ActivityProbe probe(p, foothold, cfg);

    // Victim request executing: the probe reads busy almost always.
    int busy = 0;
    for (int i = 0; i < 50; ++i)
        busy += probe.sample().busy;
    EXPECT_GE(busy, 40);

    // After the victim's request completes, the host goes quiet.
    p.advance(sim::Duration::hours(3));
    // (probe instances idled; re-check against a terminated victim)
    if (p.instanceInfo(foothold).state !=
        InstanceState::Terminated) {
        int busy_after = 0;
        for (int i = 0; i < 50; ++i)
            busy_after += probe.sample().busy;
        EXPECT_LE(busy_after, 5);
    }
}

/**
 * Checkpoint/restore round-trip of one arrival stream: cut the stream
 * mid-flight at a window boundary, restore the saved (rng, origin,
 * next) triple into a fresh cursor, and the resumed stream must be
 * byte-identical to the uncut reference over 10k+ draws. Also cuts
 * exactly ON the pre-drawn next instant — generateUntil's strict
 * less-than leaves it pending, so the restored cursor must still
 * emit it first.
 */
void
expectCursorRoundTrip(ArrivalKind kind)
{
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate_rps = 40.0;
    spec.burst_factor = 3.0;
    spec.span = sim::Duration::minutes(10); // diurnal cycle length
    const sim::SimTime origin =
        sim::SimTime() + sim::Duration::seconds(17);
    const auto stream = [&] {
        return sim::Rng(7).fork(static_cast<std::uint64_t>(kind));
    };

    // Uncut reference: at 40 rps, 300 s of stream is 10k+ draws.
    ArrivalCursor ref(spec, stream(), origin);
    std::vector<sim::SimTime> want;
    sim::SimTime horizon = origin;
    while (want.size() < 10000) {
        horizon = horizon + sim::Duration::seconds(30);
        ref.generateUntil(horizon, want);
    }
    ASSERT_GE(want.size(), 10000u);

    // Cut at an arbitrary mid-stream boundary, restore, resume.
    ArrivalCursor cut(spec, stream(), origin);
    std::vector<sim::SimTime> got;
    cut.generateUntil(origin + sim::Duration::seconds(97), got);
    ASSERT_FALSE(got.empty());
    ArrivalCursor resumed(spec, sim::Rng(1), origin);
    resumed.restore(cut.rngState(), cut.origin(), cut.next());
    EXPECT_EQ(resumed.next(), cut.next());
    resumed.generateUntil(horizon, got);
    EXPECT_EQ(got, want);

    // Cut landing exactly on the pre-drawn next arrival instant.
    ArrivalCursor edge(spec, stream(), origin);
    std::vector<sim::SimTime> got_edge;
    edge.generateUntil(origin + sim::Duration::seconds(53), got_edge);
    const sim::SimTime pending = edge.next();
    const std::size_t before = got_edge.size();
    edge.generateUntil(pending, got_edge); // strict <: emits nothing
    EXPECT_EQ(got_edge.size(), before);
    ArrivalCursor resumed_edge(spec, sim::Rng(2), origin);
    resumed_edge.restore(edge.rngState(), edge.origin(), edge.next());
    EXPECT_EQ(resumed_edge.next(), pending);
    resumed_edge.generateUntil(horizon, got_edge);
    EXPECT_EQ(got_edge, want);
}

TEST(ArrivalCursor, PoissonRestoreRoundTripsMidStream)
{
    expectCursorRoundTrip(ArrivalKind::Poisson);
}

TEST(ArrivalCursor, DiurnalRestoreRoundTripsMidStream)
{
    expectCursorRoundTrip(ArrivalKind::Diurnal);
}

TEST(ArrivalCursor, ParetoRestoreRoundTripsMidStream)
{
    expectCursorRoundTrip(ArrivalKind::Pareto);
}

TEST(ActivityProbe, WatchProducesTimeline)
{
    Platform p(smallConfig(11));
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, ExecEnv::Gen1);
    const auto ids = p.connect(svc, 10);
    channel::ActivityProbe probe(p, ids[0]);
    const auto trace = probe.watch(sim::Duration::seconds(1),
                                   sim::Duration::seconds(30));
    EXPECT_EQ(trace.size(), 30u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GT(trace[i].when, trace[i - 1].when);
}

} // namespace
} // namespace eaao::faas
