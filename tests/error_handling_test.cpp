/**
 * @file
 * Error-handling tests: invariant violations panic (abort) with a
 * diagnostic, user-facing misconfiguration is caught early, and the
 * logging helpers behave.
 */

#include <gtest/gtest.h>

#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "faas/platform.hpp"
#include "sim/event_queue.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"
#include "support/logging.hpp"

namespace eaao {
namespace {

using DeathTest = ::testing::Test;

TEST(ErrorHandling, SchedulingIntoThePastPanics)
{
    sim::EventQueue eq;
    eq.advance(sim::Duration::seconds(10));
    EXPECT_DEATH(eq.scheduleAt(sim::SimTime() + sim::Duration::seconds(5),
                               [] {}),
                 "scheduling into the past");
}

TEST(ErrorHandling, RegressionRejectsDegenerateInput)
{
    EXPECT_DEATH(stats::linearRegression({1.0}, {2.0}),
                 "at least two points");
    EXPECT_DEATH(stats::linearRegression({1.0, 1.0}, {2.0, 3.0}),
                 "all x identical");
    EXPECT_DEATH(stats::linearRegression({1.0, 2.0}, {2.0}),
                 "size mismatch");
}

TEST(ErrorHandling, PercentileValidatesInput)
{
    EXPECT_DEATH(stats::percentile({}, 0.5), "empty sample");
    EXPECT_DEATH(stats::percentile({1.0}, 1.5), "out of range");
}

TEST(ErrorHandling, BadIdsPanic)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 220;
    faas::Platform p(cfg);
    EXPECT_DEATH((void)p.instanceInfo(999), "bad instance");
    EXPECT_DEATH((void)p.orchestrator().account(7), "bad account");
    EXPECT_DEATH((void)p.orchestrator().service(7), "bad service");
    EXPECT_DEATH((void)p.fleet().host(100000), "bad host");
    EXPECT_DEATH((void)p.createAccount(99), "bad shard");
}

TEST(ErrorHandling, SandboxOfTerminatedInstancePanics)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 220;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 5);
    p.disconnectAll(svc);
    p.advance(sim::Duration::minutes(20));
    EXPECT_DEATH((void)p.sandbox(ids[0]), "terminated instance");
}

TEST(ErrorHandling, Gen1SandboxCannotReadRefinedFrequency)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 220;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 1);
    faas::SandboxView sbx = p.sandbox(ids[0]);
    EXPECT_DEATH((void)sbx.refinedTscFrequencyHz(),
                 "only readable inside a Gen 2 guest");
}

TEST(ErrorHandling, ChannelRejectsBadThreshold)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 220;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 2);
    channel::RngChannel chan(p);
    EXPECT_DEATH(chan.run({ids[0], ids[1]}, 1), "at least 2");
}

TEST(ErrorHandling, ChannelRequiresLiveConnections)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 220;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 2);
    p.disconnectAll(svc); // instances idle: no connection to test over
    channel::RngChannel chan(p);
    EXPECT_DEATH(chan.run({ids[0], ids[1]}, 2), "live connection");
}

TEST(ErrorHandling, QuantizeRejectsBadPrecision)
{
    core::Gen1Reading r;
    r.cpu_model = "Intel Xeon CPU @ 2.00GHz";
    EXPECT_DEATH((void)core::quantizeGen1(r, 0.0),
                 "rounding precision");
    EXPECT_DEATH((void)core::quantizeGen1(r, -1.0),
                 "rounding precision");
}

TEST(Logging, LevelsGateEmission)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    // No crash, nothing observable: just exercise the paths.
    warn("suppressed warning");
    inform("suppressed info");
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

} // namespace
} // namespace eaao
