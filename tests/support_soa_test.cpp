/**
 * @file
 * Property tests for the SoA host-load table (support/soa.hpp) against
 * a retained array-of-structs reference, under long random operation
 * sequences including the sharded platform's delta-drain barriers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "support/soa.hpp"

namespace eaao::support {
namespace {

/** The AoS model: one struct per host plus an explicit touch list. */
struct RefTable
{
    struct Entry
    {
        double vcpus = 0.0;
        double mem_gb = 0.0;
        bool dirty = false;
    };
    std::vector<Entry> hosts;
    std::vector<std::uint32_t> touched; //!< first-touch order

    explicit RefTable(std::size_t n) : hosts(n) {}

    void
    touch(std::uint32_t h)
    {
        if (!hosts[h].dirty) {
            hosts[h].dirty = true;
            touched.push_back(h);
        }
    }

    void
    add(std::uint32_t h, double v, double m)
    {
        hosts[h].vcpus += v;
        hosts[h].mem_gb += m;
        touch(h);
    }

    void
    sub(std::uint32_t h, double v, double m)
    {
        hosts[h].vcpus -= v;
        hosts[h].mem_gb -= m;
        touch(h);
    }

    /** Mirror of HostLoadSoA::drain, folding in first-touch order. */
    HostLoadFold
    drain(RefTable *into)
    {
        HostLoadFold fold;
        for (const std::uint32_t h : touched) {
            fold.vcpus += hosts[h].vcpus;
            fold.mem_gb += hosts[h].mem_gb;
            if (into != nullptr) {
                into->hosts[h].vcpus += hosts[h].vcpus;
                into->hosts[h].mem_gb += hosts[h].mem_gb;
            }
            hosts[h].vcpus = 0.0;
            hosts[h].mem_gb = 0.0;
            hosts[h].dirty = false;
        }
        fold.hosts = touched.size();
        touched.clear();
        return fold;
    }
};

TEST(HostLoadSoAProperty, MatchesAosReferenceOverRandomOps)
{
    constexpr std::size_t kHosts = 257;
    constexpr std::uint32_t kLanes = 3;

    sim::Rng rng(0x50a50a);

    HostLoadSoA committed;
    committed.assign(kHosts);
    RefTable ref_committed(kHosts);

    std::vector<HostLoadSoA> lanes(kLanes);
    std::vector<RefTable> ref_lanes;
    for (std::uint32_t i = 0; i < kLanes; ++i) {
        lanes[i].assign(kHosts, /*track_touched=*/true);
        ref_lanes.emplace_back(kHosts);
    }

    // Sizes quantized like real container sizes so cancellations to
    // exactly 0.0 happen (the bit-exactness trap worth testing).
    const auto quantum = [&rng] {
        return 0.25 * static_cast<double>(rng.uniformInt(1, 8));
    };

    for (int op = 0; op < 10'000; ++op) {
        const auto lane = static_cast<std::uint32_t>(rng.uniformInt(kLanes));
        const auto host = static_cast<std::uint32_t>(rng.uniformInt(kHosts));
        switch (rng.uniformInt(8)) {
        case 0:
        case 1:
        case 2: { // add
            const double v = quantum();
            const double m = quantum();
            lanes[lane].add(host, v, m);
            ref_lanes[lane].add(host, v, m);
            break;
        }
        case 3:
        case 4: { // sub
            const double v = quantum();
            const double m = quantum();
            lanes[lane].sub(host, v, m);
            ref_lanes[lane].sub(host, v, m);
            break;
        }
        case 5: { // point read: committed + lane delta, both columns
            const double soa_v =
                committed.vcpus(host) + lanes[lane].vcpus(host);
            const double ref_v = ref_committed.hosts[host].vcpus +
                                 ref_lanes[lane].hosts[host].vcpus;
            ASSERT_EQ(soa_v, ref_v) << "op " << op << " host " << host;
            const double soa_m =
                committed.memGb(host) + lanes[lane].memGb(host);
            const double ref_m = ref_committed.hosts[host].mem_gb +
                                 ref_lanes[lane].hosts[host].mem_gb;
            ASSERT_EQ(soa_m, ref_m) << "op " << op << " host " << host;
            break;
        }
        case 6: { // barrier: drain every lane in canonical lane order
            for (std::uint32_t i = 0; i < kLanes; ++i) {
                const HostLoadFold f = lanes[i].drain(&committed);
                const HostLoadFold rf = ref_lanes[i].drain(&ref_committed);
                ASSERT_EQ(f.hosts, rf.hosts) << "op " << op;
                ASSERT_EQ(f.vcpus, rf.vcpus) << "op " << op;
                ASSERT_EQ(f.mem_gb, rf.mem_gb) << "op " << op;
                ASSERT_TRUE(lanes[i].touched().empty());
            }
            break;
        }
        default: { // dropped exchange (the fault-4 path): discard
            const HostLoadFold f = lanes[lane].drain(nullptr);
            const HostLoadFold rf = ref_lanes[lane].drain(nullptr);
            ASSERT_EQ(f.hosts, rf.hosts) << "op " << op;
            ASSERT_EQ(f.vcpus, rf.vcpus) << "op " << op;
            ASSERT_EQ(f.mem_gb, rf.mem_gb) << "op " << op;
            break;
        }
        }
    }

    // Final settle: every host's committed + residual deltas agree
    // bit-for-bit between the layouts.
    for (std::uint32_t i = 0; i < kLanes; ++i)
        ASSERT_EQ(lanes[i].touched().size(), ref_lanes[i].touched.size());
    for (std::uint32_t h = 0; h < kHosts; ++h) {
        double soa_v = committed.vcpus(h);
        double ref_v = ref_committed.hosts[h].vcpus;
        double soa_m = committed.memGb(h);
        double ref_m = ref_committed.hosts[h].mem_gb;
        for (std::uint32_t i = 0; i < kLanes; ++i) {
            soa_v += lanes[i].vcpus(h);
            ref_v += ref_lanes[i].hosts[h].vcpus;
            soa_m += lanes[i].memGb(h);
            ref_m += ref_lanes[i].hosts[h].mem_gb;
        }
        ASSERT_EQ(soa_v, ref_v) << "host " << h;
        ASSERT_EQ(soa_m, ref_m) << "host " << h;
    }
}

TEST(HostLoadSoA, TouchOrderIsFirstTouch)
{
    HostLoadSoA t;
    t.assign(8, true);
    t.add(5, 1.0, 1.0);
    t.add(2, 1.0, 1.0);
    t.add(5, 1.0, 1.0); // re-touch must not re-append
    t.sub(7, 1.0, 1.0);
    const std::vector<std::uint32_t> want = {5, 2, 7};
    EXPECT_EQ(t.touched(), want);

    HostLoadSoA into;
    into.assign(8);
    const HostLoadFold f = t.drain(&into);
    EXPECT_EQ(f.hosts, 3u);
    EXPECT_EQ(f.vcpus, 2.0); // 2 + 1 - 1, in touch order
    EXPECT_TRUE(t.touched().empty());
    EXPECT_EQ(into.vcpus(5), 2.0);
    EXPECT_EQ(into.vcpus(2), 1.0);
    EXPECT_EQ(into.vcpus(7), -1.0);
    EXPECT_EQ(t.vcpus(5), 0.0);
}

TEST(HostLoadSoA, UntrackedModeKeepsNoTouchList)
{
    HostLoadSoA t;
    t.assign(4);
    EXPECT_FALSE(t.tracking());
    t.add(1, 2.0, 3.0);
    t.sub(1, 0.5, 0.5);
    EXPECT_TRUE(t.touched().empty());
    EXPECT_EQ(t.vcpus(1), 1.5);
    EXPECT_EQ(t.memGb(1), 2.5);
}

} // namespace
} // namespace eaao::support
