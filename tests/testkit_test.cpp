/**
 * @file
 * Tests of the scenario-fuzzing testkit itself: generator determinism,
 * replay-file round-trips, the invariant oracles on sampled scenarios,
 * and the shrinker's ability to minimize a planted orchestrator bug.
 */

#include <gtest/gtest.h>

#include "testkit/invariants.hpp"
#include "testkit/runner.hpp"
#include "testkit/scenario.hpp"
#include "testkit/shrink.hpp"

namespace eaao::testkit {
namespace {

TEST(ScenarioGen, DeterministicPerIndex)
{
    for (std::uint64_t i = 0; i < 16; ++i) {
        const Scenario a = generateScenario(42, i);
        const Scenario b = generateScenario(42, i);
        EXPECT_EQ(a.serialize(), b.serialize()) << "index " << i;
    }
}

TEST(ScenarioGen, IndependentOfOtherIndices)
{
    // Scenario i must not depend on which indices were drawn before.
    const Scenario direct = generateScenario(42, 7);
    generateScenario(42, 3);
    generateScenario(42, 11);
    const Scenario again = generateScenario(42, 7);
    EXPECT_EQ(direct.serialize(), again.serialize());
}

TEST(ScenarioGen, DistinctAcrossIndices)
{
    EXPECT_NE(generateScenario(42, 0).serialize(),
              generateScenario(42, 1).serialize());
    EXPECT_NE(generateScenario(42, 0).serialize(),
              generateScenario(43, 0).serialize());
}

TEST(ScenarioGen, WellFormed)
{
    for (std::uint64_t i = 0; i < 64; ++i) {
        const Scenario sc = generateScenario(7, i);
        ASSERT_FALSE(sc.accounts.empty());
        ASSERT_FALSE(sc.services.empty());
        ASSERT_FALSE(sc.steps.empty());
        for (const ScenarioService &s : sc.services)
            EXPECT_LT(s.account, sc.accounts.size());
    }
}

TEST(ScenarioSerialize, RoundTrip)
{
    for (std::uint64_t i = 0; i < 32; ++i) {
        const Scenario sc = generateScenario(99, i);
        const std::string text = sc.serialize();
        Scenario parsed;
        std::string error;
        ASSERT_TRUE(Scenario::parse(text, parsed, error)) << error;
        EXPECT_EQ(parsed.serialize(), text);
    }
}

TEST(ScenarioSerialize, RejectsMalformedInput)
{
    Scenario sc;
    std::string error;
    EXPECT_FALSE(Scenario::parse("", sc, error));
    EXPECT_FALSE(Scenario::parse("not-a-scenario\n", sc, error));
    EXPECT_FALSE(Scenario::parse("eaao-scenario v1\nbogus 1\n", sc, error));
    // A service referencing a missing account is structurally invalid.
    EXPECT_FALSE(Scenario::parse("eaao-scenario v1\n"
                                 "account -1 1000\n"
                                 "service 5 0 1\n",
                                 sc, error));
    EXPECT_FALSE(error.empty());
    // Comments and blank lines are fine.
    EXPECT_TRUE(Scenario::parse("eaao-scenario v1\n"
                                "# comment\n"
                                "\n"
                                "account -1 1000\n"
                                "service 0 0 1\n"
                                "step route 0 5 0\n",
                                sc, error))
        << error;
    EXPECT_EQ(sc.steps.size(), 1u);
    EXPECT_EQ(sc.steps[0].kind, ScenarioStep::Kind::Route);
}

TEST(ScenarioSerialize, RejectsNewerVersions)
{
    // A replay from a future format must fail loudly, not misparse.
    Scenario sc;
    std::string error;
    EXPECT_FALSE(Scenario::parse("eaao-scenario v3\n"
                                 "[campaign]\n"
                                 "name = x\n",
                                 sc, error));
    EXPECT_NE(error.find("newer"), std::string::npos) << error;
    EXPECT_FALSE(Scenario::parse("eaao-scenario v99\n", sc, error));
    EXPECT_NE(error.find("newer"), std::string::npos) << error;
}

TEST(ScenarioSerialize, ParsesV2Sections)
{
    // serialize() emits the sectioned v2 format; a hand-written v2
    // file with extra (non-replay) sections parses to the same model.
    Scenario sc;
    std::string error;
    ASSERT_TRUE(Scenario::parse("eaao-scenario v2\n"
                                "[campaign]\n"
                                "name = demo\n"
                                "program = replay\n"
                                "[platform]\n"
                                "seed = 7\n"
                                "profile = us-east1\n"
                                "hosts = 550\n"
                                "[tenants]\n"
                                "account -1 1000\n"
                                "service 0 0 1\n"
                                "[script]\n"
                                "route 0 5 0\n",
                                sc, error))
        << error;
    EXPECT_EQ(sc.seed, 7u);
    EXPECT_EQ(sc.host_count, 550u);
    ASSERT_EQ(sc.steps.size(), 1u);
    EXPECT_EQ(sc.steps[0].kind, ScenarioStep::Kind::Route);
    // And the canonical serialization round-trips.
    Scenario again;
    ASSERT_TRUE(Scenario::parse(sc.serialize(), again, error)) << error;
    EXPECT_EQ(again.serialize(), sc.serialize());
}

TEST(ScenarioGen, ShardAwareTopology)
{
    // The generator targets the sharded platform's lane structure: a
    // 550-host fleet (>= 5 shards on every profile), home-shard pins
    // confined to lanes 0..4, and idle gaps that include exact window
    // multiples so barrier-straddling schedules get exercised.
    bool saw_pin = false;
    bool saw_unpinned = false;
    bool saw_window_multiple = false;
    for (std::uint64_t i = 0; i < 64; ++i) {
        const Scenario sc = generateScenario(31337, i);
        EXPECT_EQ(sc.host_count, 550u) << "index " << i;
        for (const ScenarioAccount &a : sc.accounts) {
            EXPECT_GE(a.shard, -1) << "index " << i;
            EXPECT_LT(a.shard, 5) << "index " << i;
            (a.shard >= 0 ? saw_pin : saw_unpinned) = true;
        }
        for (const ScenarioStep &st : sc.steps) {
            if (st.kind == ScenarioStep::Kind::Advance && st.a != 0 &&
                st.a % 30'000 == 0)
                saw_window_multiple = true;
        }
    }
    EXPECT_TRUE(saw_pin);
    EXPECT_TRUE(saw_unpinned);
    EXPECT_TRUE(saw_window_multiple);
}

TEST(ScenarioRunner, DeterministicLog)
{
    const Scenario sc = generateScenario(5, 2);
    EXPECT_EQ(runScenario(sc).render(), runScenario(sc).render());
}

TEST(ScenarioRunner, ConservesEvents)
{
    for (std::uint64_t i = 0; i < 8; ++i) {
        const ScenarioLog log = runScenario(generateScenario(5, i));
        EXPECT_EQ(log.events_scheduled, log.events_processed +
                                            log.events_cancelled +
                                            log.events_pending)
            << "index " << i;
    }
}

TEST(Invariants, HoldOnSampledScenarios)
{
    // A miniature fuzz campaign inside ctest: the cheap oracles on a
    // handful of random scenarios. The nightly fuzz-smoke CI job runs
    // the real campaign.
    InvariantOptions opts;
    opts.thread_trials = 2;
    for (std::uint64_t i = 0; i < 6; ++i) {
        const std::vector<Violation> violations =
            checkInvariants(generateScenario(1, i), opts);
        for (const Violation &v : violations)
            ADD_FAILURE() << "scenario " << i << " [" << v.oracle << "] "
                          << v.detail;
    }
}

TEST(Invariants, VerifyOracleHoldsOnOneScenario)
{
    InvariantOptions opts;
    opts.check_reference = false;
    opts.check_threads = false;
    opts.check_obs = false;
    opts.check_events = false;
    opts.check_verify = true;
    const std::vector<Violation> violations =
        checkInvariants(generateScenario(1, 0), opts);
    for (const Violation &v : violations)
        ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
}

TEST(Invariants, CatchInjectedRoutingFault)
{
    // The mutation self-test (docs/testing.md): fault 1 makes indexed
    // routing pick the most recently activated spare instance instead
    // of the least loaded one; the indexed-vs-reference oracle must
    // notice on some early scenario.
    InvariantOptions opts;
    opts.check_threads = false; // both arms share the fault; cheap skip
    opts.check_obs = false;
    bool caught = false;
    for (std::uint64_t i = 0; i < 24 && !caught; ++i) {
        Scenario sc = generateScenario(1, i);
        sc.fault = 1;
        caught = !checkInvariants(sc, opts).empty();
    }
    EXPECT_TRUE(caught);
}

TEST(Shrink, MinimizesInjectedFaultScenario)
{
    InvariantOptions opts;
    opts.check_threads = false;
    opts.check_obs = false;
    opts.check_events = false;
    const FailurePredicate still_fails = [&](const Scenario &candidate) {
        return !checkInvariants(candidate, opts).empty();
    };

    Scenario failing;
    bool found = false;
    for (std::uint64_t i = 0; i < 24 && !found; ++i) {
        failing = generateScenario(1, i);
        failing.fault = 1;
        found = still_fails(failing);
    }
    ASSERT_TRUE(found);

    const ShrinkResult result = shrink(failing, still_fails);
    EXPECT_TRUE(still_fails(result.scenario));
    EXPECT_LE(result.scenario.steps.size(), 10u);
    EXPECT_LE(result.scenario.steps.size(), failing.steps.size());
    EXPECT_GT(result.attempts, 0u);

    // The minimized scenario still round-trips through its replay file.
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(Scenario::parse(result.scenario.serialize(), parsed, error))
        << error;
    EXPECT_TRUE(still_fails(parsed));
}

TEST(Shrink, PreservesPassingPredicateInput)
{
    // Shrinking with an always-true predicate collapses to the floor:
    // one account, one service, no steps.
    const Scenario sc = generateScenario(3, 1);
    const ShrinkResult result =
        shrink(sc, [](const Scenario &) { return true; });
    EXPECT_EQ(result.scenario.accounts.size(), 1u);
    EXPECT_EQ(result.scenario.services.size(), 1u);
    EXPECT_TRUE(result.scenario.steps.empty());
}

} // namespace
} // namespace eaao::testkit
