/**
 * @file
 * Determinism regression: a campaign replayed from the same seed must
 * produce the same placement trace, event for event.
 *
 * Guards the kernel and orchestrator against accidental dependence on
 * hash-table iteration order, pointer values, or wall-clock state —
 * any of which would silently break the cross-thread reproducibility
 * the trial harness promises (identical stdout for any --threads).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "faas/trace.hpp"
#include "obs/export.hpp"
#include "obs/trace_sink.hpp"

namespace eaao {
namespace {

/** Run one optimized campaign and return the full placement trace. */
std::vector<faas::PlacementEvent>
tracedCampaign(std::uint64_t seed, bool reference_scan = false)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    cfg.orchestrator.reference_scan = reference_scan;
    faas::Platform platform(cfg);

    faas::PlacementTrace trace;
    platform.orchestrator().attachTrace(&trace);

    const auto attacker = platform.createAccount();
    core::runOptimizedCampaign(platform, attacker,
                               core::CampaignConfig{});

    // Also exercise the victim path so reuse placements are traced.
    const auto victim = platform.createAccount(1);
    const auto vsvc =
        platform.deployService(victim, faas::ExecEnv::Gen1);
    platform.connect(vsvc, 50);
    platform.advance(sim::Duration::minutes(20));

    platform.orchestrator().attachTrace(nullptr);
    return trace.events();
}

TEST(Determinism, CampaignTraceIsReplayable)
{
    const auto first = tracedCampaign(20260806);
    const auto second = tracedCampaign(20260806);

    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        const faas::PlacementEvent &a = first[i];
        const faas::PlacementEvent &b = second[i];
        ASSERT_EQ(a.when, b.when) << "event " << i;
        ASSERT_EQ(a.instance, b.instance) << "event " << i;
        ASSERT_EQ(a.service, b.service) << "event " << i;
        ASSERT_EQ(a.account, b.account) << "event " << i;
        ASSERT_EQ(a.host, b.host) << "event " << i;
        ASSERT_EQ(a.reason, b.reason) << "event " << i;
    }
}

TEST(Determinism, IndexedAndReferenceScanTracesMatch)
{
    // The incremental placement/routing indexes are pure accelerations
    // of the retained reference-scan decision paths: replaying the
    // campaign with `reference_scan` set must reproduce the indexed
    // trace event for event.
    const auto indexed = tracedCampaign(20260806, false);
    const auto reference = tracedCampaign(20260806, true);

    ASSERT_FALSE(indexed.empty());
    ASSERT_EQ(indexed.size(), reference.size());
    for (std::size_t i = 0; i < indexed.size(); ++i) {
        const faas::PlacementEvent &a = indexed[i];
        const faas::PlacementEvent &b = reference[i];
        ASSERT_EQ(a.when, b.when) << "event " << i;
        ASSERT_EQ(a.instance, b.instance) << "event " << i;
        ASSERT_EQ(a.service, b.service) << "event " << i;
        ASSERT_EQ(a.account, b.account) << "event " << i;
        ASSERT_EQ(a.host, b.host) << "event " << i;
        ASSERT_EQ(a.reason, b.reason) << "event " << i;
    }
}

/** Run one campaign with the obs layer attached; render its trace. */
std::string
obsTracedCampaign(std::uint64_t seed)
{
    obs::TrialObs slot;
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    cfg.obs = slot.observer();
    faas::Platform platform(cfg);

    const auto attacker = platform.createAccount();
    core::runOptimizedCampaign(platform, attacker,
                               core::CampaignConfig{});

    return obs::toChromeTraceJson({&slot.trace}) +
           slot.metrics.toJson();
}

TEST(Determinism, ObsTraceAndMetricsReplayIdentically)
{
    // The observability layer must inherit the replay guarantee: the
    // rendered trace and metrics JSON are pure functions of the seed.
    const std::string first = obsTracedCampaign(20260806);
    const std::string second = obsTracedCampaign(20260806);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
#if EAAO_OBS_ENABLED
    EXPECT_NE(first.find("instance.create"), std::string::npos);
    EXPECT_NE(first.find("strategy.campaign"), std::string::npos);
    EXPECT_NE(first.find("faas.cold_start_s"), std::string::npos);
#endif
}

TEST(Determinism, DistinctSeedsDiverge)
{
    // Sanity check that the comparison above is not vacuous: different
    // seeds must produce different traces.
    const auto a = tracedCampaign(1);
    const auto b = tracedCampaign(2);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].host != b[i].host || a[i].when != b[i].when;
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace eaao
