/**
 * @file
 * Tests for the Chrome trace_event sink: span/instant rendering, arg
 * encoding and escaping, the per-track monotonic-timestamp guarantee
 * of the serialized file, and byte-determinism across renders.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_sink.hpp"
#include "sim/time.hpp"

namespace eaao {
namespace {

sim::SimTime
at(std::int64_t ms)
{
    return sim::SimTime::fromNanos(ms * 1000000);
}

/** Extract the numeric token following `"key": ` on @p line. */
double
numberAfter(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    const std::size_t pos = line.find(needle);
    EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
    return std::stod(line.substr(pos + needle.size()));
}

TEST(ObsTrace, SpansAndInstantsRender)
{
    obs::TraceSink sink;
    sink.instant("platform.up", "platform", at(0),
                 {obs::TraceArg::u64("hosts", 1850)});
    sink.complete("instance", "lifecycle", at(10), at(250),
                  {obs::TraceArg::u64("instance", 7),
                   obs::TraceArg::f64("cold_start_s", 1.25),
                   obs::TraceArg::i64("delta", -3),
                   obs::TraceArg::str("reason", "cold-base")});

    const std::string json = obs::toChromeTraceJson({&sink});
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
    // Instant: phase 'i' with thread scope.
    EXPECT_NE(json.find("\"name\": \"platform.up\", \"ph\": \"i\""),
              std::string::npos);
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
    // Span: phase 'X' with ts/dur in microseconds (10ms -> 10000us).
    EXPECT_NE(json.find("\"ph\": \"X\", \"ts\": 10000.000, "
                        "\"dur\": 240000.000"),
              std::string::npos);
    // Args of every kind.
    EXPECT_NE(json.find("\"hosts\": 1850"), std::string::npos);
    EXPECT_NE(json.find("\"cold_start_s\": 1.25"), std::string::npos);
    EXPECT_NE(json.find("\"delta\": -3"), std::string::npos);
    EXPECT_NE(json.find("\"reason\": \"cold-base\""), std::string::npos);
    // Metadata names the process and both tracks.
    EXPECT_NE(json.find("\"name\": \"trial 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"platform\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"lifecycle\""), std::string::npos);
}

TEST(ObsTrace, StringsAreEscaped)
{
    obs::TraceSink sink;
    sink.instant("quote\"back\\slash", "track\ttab", at(1));
    const std::string json = obs::toChromeTraceJson({&sink});
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
    EXPECT_NE(json.find("track\\ttab"), std::string::npos);
}

TEST(ObsTrace, SerializedTimestampsAreMonotonicPerTrack)
{
    obs::TraceSink sink;
    // Emit out of timestamp order on two interleaved tracks; nested
    // spans close inner-first, so emission order is end-time order.
    sink.complete("outer", "a", at(0), at(100));
    sink.instant("i3", "a", at(30));
    sink.instant("i1", "a", at(10));
    sink.complete("inner", "a", at(20), at(40));
    sink.instant("other", "b", at(5));
    sink.instant("late", "b", at(500));

    const std::string json = obs::toChromeTraceJson({&sink});
    std::istringstream lines(json);
    std::string line;
    std::map<std::pair<long, long>, double> last_ts;
    std::size_t seen = 0;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\": \"i\"") == std::string::npos &&
            line.find("\"ph\": \"X\"") == std::string::npos)
            continue;
        const auto key = std::make_pair(
            static_cast<long>(numberAfter(line, "pid")),
            static_cast<long>(numberAfter(line, "tid")));
        const double ts = numberAfter(line, "ts");
        auto it = last_ts.find(key);
        if (it != last_ts.end()) {
            EXPECT_GE(ts, it->second) << "track went backwards: " << line;
        }
        last_ts[key] = ts;
        ++seen;
    }
    EXPECT_EQ(seen, 6u);

    // Nesting check: the outer span must be serialized before the
    // inner one (same start order as Perfetto expects for stacking).
    EXPECT_LT(json.find("\"name\": \"outer\""),
              json.find("\"name\": \"inner\""));
}

TEST(ObsTrace, RenderIsByteDeterministic)
{
    obs::TraceSink a;
    obs::TraceSink b;
    for (obs::TraceSink *sink : {&a, &b}) {
        sink->instant("x", "t", at(3), {obs::TraceArg::u64("k", 1)});
        sink->complete("y", "t", at(1), at(9));
    }
    EXPECT_EQ(obs::toChromeTraceJson({&a}), obs::toChromeTraceJson({&b}));
}

TEST(ObsTrace, NullAndEmptySlotsKeepPidNumbering)
{
    obs::TraceSink empty;
    obs::TraceSink used;
    used.instant("e", "t", at(1));

    // Slot 0 is null, slot 1 empty; the used sink keeps pid 2.
    const std::string json =
        obs::toChromeTraceJson({nullptr, &empty, &used});
    EXPECT_NE(json.find("\"name\": \"trial 2\""), std::string::npos);
    EXPECT_EQ(json.find("\"name\": \"trial 0\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
}

TEST(ObsTrace, ClearDropsEventsKeepsTracks)
{
    obs::TraceSink sink;
    sink.instant("e", "t", at(1));
    EXPECT_EQ(sink.size(), 1u);
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.tracks().size(), 1u);
}

} // namespace
} // namespace eaao
