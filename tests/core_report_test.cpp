/**
 * @file
 * Unit tests for the table renderer and formatting helpers.
 */

#include <gtest/gtest.h>

#include "core/report.hpp"

namespace eaao::core {
namespace {

TEST(TextTable, AlignsColumnsByWidestCell)
{
    TextTable table;
    table.header({"a", "long-header"});
    table.row({"wide-cell", "x"});
    const std::string out = table.str();
    // Every line is padded to the same column starts.
    const auto nl1 = out.find('\n');
    const auto header_line = out.substr(0, nl1);
    EXPECT_EQ(header_line.find("long-header"), 11u); // 9 + 2 spaces
    EXPECT_NE(out.find("wide-cell  x"), std::string::npos);
}

TEST(TextTable, HeaderRuleMatchesWidth)
{
    TextTable table;
    table.header({"ab", "cd"});
    table.row({"1", "2"});
    const std::string out = table.str();
    EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(TextTable, ShortRowsRenderEmptyCells)
{
    TextTable table;
    table.header({"a", "b", "c"});
    table.row({"only-one"});
    EXPECT_NE(table.str().find("only-one"), std::string::npos);
}

TEST(TextTable, CsvBasic)
{
    TextTable table;
    table.header({"x", "y"});
    table.row({"1", "2"});
    table.row({"3", "4"});
    EXPECT_EQ(table.csv(), "x,y\n1,2\n3,4\n");
}

TEST(TextTable, CsvEscapesSpecials)
{
    TextTable table;
    table.header({"name", "value"});
    table.row({"a,b", "say \"hi\""});
    EXPECT_EQ(table.csv(),
              "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Format, PrintfSemantics)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Percent, RendersFractions)
{
    EXPECT_EQ(percent(0.977), "97.7%");
    EXPECT_EQ(percent(1.0, 0), "100%");
    EXPECT_EQ(percent(0.0), "0.0%");
}

} // namespace
} // namespace eaao::core
