/**
 * @file
 * Unit tests for the deterministic RNG and distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/distributions.hpp"
#include "sim/rng.hpp"

namespace eaao::sim {
namespace {

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentAndOrderFree)
{
    Rng parent(7);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    Rng c1_again = parent.fork(1);
    EXPECT_EQ(c1(), c1_again());
    EXPECT_NE(c1(), c2());
}

TEST(Rng, ForkStreamsAreStatisticallyIndependent)
{
    // Determinism contract of the parallel trial harness: adjacent
    // stream ids must behave as independent generators. Check (a)
    // Pearson cross-correlation of paired uniforms and (b) a
    // chi-square uniformity test on the joint 16x16 bin occupancy.
    const Rng parent(2024);
    constexpr int kPairs = 25600;
    for (std::uint64_t id = 0; id < 4; ++id) {
        Rng a = parent.fork(id);
        Rng b = parent.fork(id + 1);

        double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
        std::vector<int> bins(16 * 16, 0);
        for (int i = 0; i < kPairs; ++i) {
            const double x = a.uniform();
            const double y = b.uniform();
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
            const int bx = static_cast<int>(x * 16.0);
            const int by = static_cast<int>(y * 16.0);
            ++bins[bx * 16 + by];
        }
        const double n = kPairs;
        const double cov = sxy / n - (sx / n) * (sy / n);
        const double vx = sxx / n - (sx / n) * (sx / n);
        const double vy = syy / n - (sy / n) * (sy / n);
        const double corr = cov / std::sqrt(vx * vy);
        // |r| ~ N(0, 1/sqrt(n)) under independence; 0.05 is 8 sigma.
        EXPECT_LT(std::fabs(corr), 0.05)
            << "streams " << id << " and " << id + 1;

        // Joint occupancy: expected 100 per cell, df = 255. The
        // one-in-a-million upper tail is ~390; the seeds are fixed so
        // this never flakes.
        const double expected = n / 256.0;
        double chi2 = 0.0;
        for (const int c : bins) {
            const double d = c - expected;
            chi2 += d * d / expected;
        }
        EXPECT_LT(chi2, 390.0) << "streams " << id << " and " << id + 1;
        EXPECT_GT(chi2, 150.0) << "suspiciously uniform joint bins";
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(4);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.uniformInt(std::uint64_t{10})];
    for (const int c : counts)
        EXPECT_NEAR(c, 5000, 350);
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniformInt(std::int64_t{-3},
                                              std::int64_t{3});
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(6);
    double sum = 0.0, sum2 = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(10.0, 2.0);
        sum += x;
        sum2 += x * x;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedianMatches)
{
    Rng rng(7);
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i)
        xs.push_back(rng.lognormal(std::log(800.0), 1.0));
    std::sort(xs.begin(), xs.end());
    EXPECT_NEAR(xs[10000], 800.0, 40.0);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(150.0);
    EXPECT_NEAR(sum / n, 150.0, 3.0);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.008);
    EXPECT_NEAR(hits, 800, 150);
}

TEST(Mix64, AvalanchesAndIsStable)
{
    EXPECT_EQ(mix64(123), mix64(123));
    EXPECT_NE(mix64(123), mix64(124));
}

TEST(ZipfWeights, NormalizedAndDecreasing)
{
    const auto w = zipfWeights(100, 0.8);
    double sum = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
        sum += w[i];
        if (i > 0) {
            EXPECT_LT(w[i], w[i - 1]);
        }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfWeights, ZeroSkewIsUniform)
{
    const auto w = zipfWeights(10, 0.0);
    for (const double x : w)
        EXPECT_NEAR(x, 0.1, 1e-12);
}

TEST(AliasSampler, RespectsWeights)
{
    Rng rng(11);
    const std::vector<double> weights = {1.0, 3.0, 6.0};
    AliasSampler sampler(weights);
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[sampler.sample(rng)];
    EXPECT_NEAR(counts[0], n * 0.1, 500);
    EXPECT_NEAR(counts[1], n * 0.3, 800);
    EXPECT_NEAR(counts[2], n * 0.6, 800);
}

TEST(WeightedSampleWithoutReplacement, DistinctAndSkewed)
{
    Rng rng(12);
    std::vector<double> weights(50, 1.0);
    weights[0] = 100.0;
    int first_selected = 0;
    for (int rep = 0; rep < 200; ++rep) {
        const auto picks =
            weightedSampleWithoutReplacement(rng, weights, 5);
        EXPECT_EQ(picks.size(), 5u);
        std::set<std::size_t> distinct(picks.begin(), picks.end());
        EXPECT_EQ(distinct.size(), 5u);
        for (const auto p : picks)
            first_selected += (p == 0);
    }
    // Index 0 carries ~2/3 of the weight; it should almost always
    // appear among 5 picks.
    EXPECT_GT(first_selected, 180);
}

TEST(WeightedSampleWithoutReplacement, SkipsZeroWeights)
{
    Rng rng(13);
    std::vector<double> weights = {0.0, 1.0, 0.0, 1.0};
    for (int rep = 0; rep < 50; ++rep) {
        const auto picks =
            weightedSampleWithoutReplacement(rng, weights, 4);
        EXPECT_EQ(picks.size(), 2u);
        for (const auto p : picks)
            EXPECT_TRUE(p == 1 || p == 3);
    }
}

TEST(SignedLogNormalMixture, SignBalanceAndTail)
{
    Rng rng(14);
    SignedLogNormalMixture mix;
    int positive = 0, tail = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = mix.sample(rng);
        positive += (v > 0);
        tail += (std::fabs(v) > 10e3);
    }
    EXPECT_NEAR(positive, n / 2, 400);
    // Tail fraction ~12%; values above 10 kHz come mostly from it.
    EXPECT_GT(tail, n / 50);
    EXPECT_LT(tail, n / 4);
}

TEST(Shuffle, PermutationPreservesElements)
{
    Rng rng(15);
    std::vector<std::size_t> items = {0, 1, 2, 3, 4, 5, 6, 7};
    auto copy = items;
    shuffle(rng, copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, items);
}

} // namespace
} // namespace eaao::sim
