/**
 * @file
 * Tests for the goodness-of-fit machinery, plus rigorous distribution
 * checks of the simulator's samplers and platform behaviours built on
 * top of it.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "faas/platform.hpp"
#include "sim/rng.hpp"
#include "stats/hypothesis.hpp"

namespace eaao::stats {
namespace {

TEST(KsTest, AcceptsMatchingDistribution)
{
    sim::Rng rng(1);
    std::vector<double> sample;
    for (int i = 0; i < 2000; ++i)
        sample.push_back(rng.normal(5.0, 2.0));
    const GofResult result = ksTest(
        sample, [](double x) { return normalCdf(x, 5.0, 2.0); });
    EXPECT_FALSE(result.reject());
}

TEST(KsTest, RejectsWrongDistribution)
{
    sim::Rng rng(2);
    std::vector<double> sample;
    for (int i = 0; i < 2000; ++i)
        sample.push_back(rng.exponential(1.0));
    const GofResult result = ksTest(
        sample, [](double x) { return normalCdf(x, 1.0, 1.0); });
    EXPECT_TRUE(result.reject());
    EXPECT_GT(result.statistic, 0.05);
}

TEST(KsTest, RejectsShiftedMean)
{
    sim::Rng rng(3);
    std::vector<double> sample;
    for (int i = 0; i < 5000; ++i)
        sample.push_back(rng.normal(0.1, 1.0));
    const GofResult result =
        ksTest(sample, [](double x) { return normalCdf(x); });
    EXPECT_TRUE(result.reject());
}

TEST(ChiSquare, AcceptsUniformCounts)
{
    sim::Rng rng(4);
    std::vector<double> observed(10, 0.0);
    for (int i = 0; i < 10000; ++i)
        observed[rng.uniformInt(std::uint64_t{10})] += 1.0;
    const std::vector<double> expected(10, 1000.0);
    EXPECT_FALSE(chiSquareTest(observed, expected).reject());
}

TEST(ChiSquare, RejectsSkewedCounts)
{
    const std::vector<double> observed = {1500, 900, 900, 900, 900,
                                          900,  900, 900, 900, 1300};
    const std::vector<double> expected(10, 1000.0);
    EXPECT_TRUE(chiSquareTest(observed, expected).reject());
}

TEST(GammaQ, KnownValues)
{
    // Q(0.5, x) = erfc(sqrt(x)).
    for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
        EXPECT_NEAR(upperIncompleteGammaQ(0.5, x),
                    std::erfc(std::sqrt(x)), 1e-9);
    }
    // Q(1, x) = exp(-x).
    for (const double x : {0.2, 1.0, 3.0})
        EXPECT_NEAR(upperIncompleteGammaQ(1.0, x), std::exp(-x), 1e-9);
    EXPECT_DOUBLE_EQ(upperIncompleteGammaQ(2.0, 0.0), 1.0);
}

TEST(Cdfs, BasicShapes)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_DOUBLE_EQ(exponentialCdf(-1.0, 2.0), 0.0);
    EXPECT_NEAR(exponentialCdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-12);
}

// ---------------------------------------------------------------------
// Sampler validation: the simulator's own distributions pass the tests
// they claim to implement.
// ---------------------------------------------------------------------

TEST(SamplerValidation, ExponentialSamplerIsExponential)
{
    sim::Rng rng(5);
    std::vector<double> sample;
    for (int i = 0; i < 3000; ++i)
        sample.push_back(rng.exponential(150.0));
    const GofResult result = ksTest(
        sample, [](double x) { return exponentialCdf(x, 150.0); });
    EXPECT_FALSE(result.reject());
}

TEST(SamplerValidation, LognormalSamplerMatchesOnLogScale)
{
    sim::Rng rng(6);
    std::vector<double> logs;
    for (int i = 0; i < 3000; ++i)
        logs.push_back(std::log(rng.lognormal(std::log(800.0), 1.0)));
    const GofResult result = ksTest(logs, [](double x) {
        return normalCdf(x, std::log(800.0), 1.0);
    });
    EXPECT_FALSE(result.reject());
}

TEST(SamplerValidation, UniformIntIsUnbiased)
{
    sim::Rng rng(7);
    std::vector<double> observed(16, 0.0);
    for (int i = 0; i < 32000; ++i)
        observed[rng.uniformInt(std::uint64_t{16})] += 1.0;
    const std::vector<double> expected(16, 2000.0);
    EXPECT_FALSE(chiSquareTest(observed, expected).reject());
}

TEST(SamplerValidation, IdleReapDelayIsShiftedExponential)
{
    // The platform's reap delays should follow hold + Exp(mean),
    // truncated at idle_max — checked on the untruncated region.
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 8;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 800);
    const sim::SimTime disconnect_at = p.now();
    p.disconnectAll(svc);
    p.advance(sim::Duration::minutes(16));

    std::vector<double> tails;
    const double hold_s =
        p.orchestrator().config().idle_hold.secondsF();
    for (const auto id : ids) {
        const auto when = p.terminatedAt(id);
        ASSERT_TRUE(when.has_value());
        const double tail =
            (*when - disconnect_at).secondsF() - hold_s;
        if (tail < 600.0) // below the truncation region
            tails.push_back(tail);
    }
    ASSERT_GT(tails.size(), 700u);
    const double mean = p.orchestrator().config().idle_reap_mean_s;
    // Compare against the exponential CDF conditioned on < 600 s.
    const double trunc = exponentialCdf(600.0, mean);
    const GofResult result =
        ksTest(tails, [mean, trunc](double x) {
            return exponentialCdf(x, mean) / trunc;
        });
    EXPECT_FALSE(result.reject(0.001));
}

} // namespace
} // namespace eaao::stats
