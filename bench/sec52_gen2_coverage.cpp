/**
 * @file
 * Section 5.2: the optimized launching strategy in the Gen 2
 * environment (both attacker and victims run Gen 2 instances).
 *
 * The paper reports victim coverage of 87.3%/88.7% (us-east1),
 * 40.7%/75.3% (us-central1) and 96.0%/97.3% (us-west1) for
 * Accounts 2/3 — slightly below Gen 1 but still highly effective,
 * with no significant sensitivity to victim count or size.
 *
 * Each (data center, victim account, run) triple runs as one
 * independent trial on the parallel harness; aggregation is serial in
 * trial order so the table is identical for any --threads value.
 */

#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "exp/trial_runner.hpp"
#include "faas/platform.hpp"
#include "stats/summary.hpp"
#include "support/bench_timer.hpp"
#include "support/options.hpp"

namespace {

constexpr int kRuns = 3;

struct DcSetup
{
    eaao::faas::DataCenterProfile profile;
    std::uint32_t shards[3];
    const char *paper[2];
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace eaao;
    const unsigned threads = support::threadsFromArgs(argc, argv);

    std::printf("=== Section 5.2: optimized strategy in the Gen 2 "
                "environment (%d runs) ===\n\n", kRuns);

    const std::vector<DcSetup> dcs = {
        {faas::DataCenterProfile::usEast1(), {0, 1, 2},
         {"87.3%", "88.7%"}},
        {faas::DataCenterProfile::usCentral1(), {0, 1, 0},
         {"40.7%", "75.3%"}},
        {faas::DataCenterProfile::usWest1(), {0, 0, 1},
         {"96.0%", "97.3%"}},
    };

    const std::size_t n_trials = dcs.size() * 2 * kRuns;
    support::BenchTimer timer("sec52_gen2_coverage", threads,
                              /*seed=*/5300);
    const std::vector<double> coverages = exp::runTrials(
        n_trials, /*seed=*/5300,
        [&](exp::TrialContext &trial) {
            const DcSetup &dc = dcs[trial.index / (2 * kRuns)];
            const int victim_idx =
                static_cast<int>((trial.index / kRuns) % 2);
            const int run = static_cast<int>(trial.index % kRuns);

            faas::PlatformConfig cfg;
            cfg.profile = dc.profile;
            cfg.seed = 5300 + victim_idx * 53 + run;
            faas::Platform platform(cfg);
            const auto attacker = platform.createAccount(dc.shards[0]);
            const auto victim = platform.createAccount(
                dc.shards[1 + victim_idx]);

            core::CampaignConfig campaign;
            campaign.env = faas::ExecEnv::Gen2;
            const core::CampaignResult attack =
                core::runOptimizedCampaign(platform, attacker,
                                           campaign);

            const auto vsvc = platform.deployService(
                victim, faas::ExecEnv::Gen2);
            const auto vids = platform.connect(vsvc, 100);
            return core::measureCoverageOracle(
                       platform, attack.occupied_hosts, vids)
                .coverage();
        },
        threads);
    support::maybeWriteBenchJson(argc, argv, timer.stop());

    core::TextTable table;
    table.header({"DC / victim", "coverage", "(sd)", "paper"});

    for (std::size_t d = 0; d < dcs.size(); ++d) {
        for (int victim_idx = 0; victim_idx < 2; ++victim_idx) {
            stats::OnlineStats coverage;
            for (int run = 0; run < kRuns; ++run)
                coverage.add(coverages[(d * 2 + victim_idx) * kRuns +
                                       run]);
            table.row({dcs[d].profile.name + " / Acc" +
                           std::to_string(victim_idx + 2),
                       core::percent(coverage.mean()),
                       core::format("%.3f", coverage.stddev()),
                       dcs[d].paper[victim_idx]});
        }
    }
    table.print();

    std::printf("\npaper shape: the strategy transfers to Gen 2 — "
                "high coverage in us-east1\nand us-west1, reduced in "
                "the larger, more dynamic us-central1.\n");
    return 0;
}
