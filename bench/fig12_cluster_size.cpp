/**
 * @file
 * Figure 12: estimating the scale of each data center's Cloud Run-style
 * cluster by exploring hosts with the optimized strategy.
 *
 * Protocol (paper Section 5.2): eight services from each of three
 * accounts (24 services), each primed with four optimized launches
 * (800 instances, 10-minute interval) — 96 launches per data center.
 * The cumulative number of unique apparent hosts flattens out, so its
 * final value estimates the cluster size.
 */

#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"

int
main()
{
    using namespace eaao;

    std::printf("=== Figure 12: cumulative unique apparent hosts "
                "across 96 launches ===\n\n");

    const std::vector<faas::DataCenterProfile> dcs = {
        faas::DataCenterProfile::usEast1(),
        faas::DataCenterProfile::usCentral1(),
        faas::DataCenterProfile::usWest1(),
    };

    std::vector<core::ExplorationResult> results;
    for (std::size_t d = 0; d < dcs.size(); ++d) {
        faas::PlatformConfig cfg;
        cfg.profile = dcs[d];
        cfg.seed = 1200 + d;
        faas::Platform platform(cfg);

        std::vector<faas::AccountId> accounts;
        for (std::uint32_t a = 0; a < 3; ++a) {
            accounts.push_back(platform.createAccount(
                a % platform.fleet().shardCount()));
        }

        core::PrimeOptions prime; // 800 instances, 10-minute interval
        results.push_back(
            core::exploreClusterSize(platform, accounts, 8, 4, prime));
    }

    core::TextTable table;
    table.header({"launch", dcs[0].name, dcs[1].name, dcs[2].name});
    for (std::size_t l = 0; l < 96; l += 8) {
        std::vector<std::string> row = {
            core::format("%zu", l + 1)};
        for (const auto &result : results) {
            row.push_back(core::format(
                "%zu", l < result.cumulative_unique.size()
                           ? result.cumulative_unique[l]
                           : result.total));
        }
        table.row(row);
    }
    std::vector<std::string> final_row = {"96"};
    for (const auto &result : results)
        final_row.push_back(core::format("%zu", result.total));
    table.row(final_row);
    table.print();

    std::printf("\ntotal unique apparent hosts found: %zu (%s), %zu "
                "(%s), %zu (%s)\npaper: 474 in us-east1, 1702 in "
                "us-central1, 199 in us-west1 — the curves\nflatten, "
                "so the totals estimate the cluster sizes.\n",
                results[0].total, dcs[0].name.c_str(),
                results[1].total, dcs[1].name.c_str(),
                results[2].total, dcs[2].name.c_str());
    return 0;
}
