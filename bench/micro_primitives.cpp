/**
 * @file
 * Micro-benchmarks (google-benchmark) for the library's primitives:
 * the event kernel (schedule/step, schedule+cancel churn, an
 * orchestrator-shaped mix — each against a legacy map-backed queue for
 * comparison), fingerprint readings, quantization, covert-channel
 * group tests, scalable-vs-pairwise verification scaling, and
 * orchestrator placement throughput.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "faas/platform.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using namespace eaao;

/**
 * The pre-slab event queue (heap of entries + unordered_map of
 * std::function callbacks + tombstone set), kept here verbatim as the
 * baseline the kernel benchmarks compare against.
 */
class LegacyMapQueue
{
  public:
    using Callback = std::function<void()>;

    sim::SimTime now() const { return now_; }

    std::uint64_t
    scheduleAt(sim::SimTime when, Callback cb)
    {
        const std::uint64_t id = next_id_++;
        heap_.push(Entry{when, next_seq_++, id});
        callbacks_.emplace(id, std::move(cb));
        return id;
    }

    std::uint64_t
    scheduleAfter(sim::Duration delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    bool
    cancel(std::uint64_t id)
    {
        auto it = callbacks_.find(id);
        if (it == callbacks_.end())
            return false;
        callbacks_.erase(it);
        cancelled_.insert(id);
        return true;
    }

    void
    run()
    {
        while (!heap_.empty())
            step();
    }

    void
    runUntil(sim::SimTime horizon)
    {
        while (!heap_.empty() && heap_.top().when <= horizon)
            step();
        now_ = horizon;
    }

  private:
    struct Entry
    {
        sim::SimTime when;
        std::uint64_t seq;
        std::uint64_t id;
    };

    struct EntryLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void
    step()
    {
        const Entry e = heap_.top();
        heap_.pop();
        if (cancelled_.erase(e.id))
            return;
        auto it = callbacks_.find(e.id);
        Callback cb = std::move(it->second);
        callbacks_.erase(it);
        now_ = e.when;
        cb();
    }

    sim::SimTime now_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_id_ = 1;
    std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::unordered_map<std::uint64_t, Callback> callbacks_;
};

constexpr int kKernelEvents = 4096;

/** Precomputed op sequence, so the timed loop is pure queue work. */
struct KernelOps
{
    std::vector<sim::SimTime> at;        //!< absolute schedule times
    std::vector<sim::Duration> delay;    //!< relative schedule delays
    std::vector<sim::Duration> complete; //!< orchestrator completion delays
    std::vector<bool> cancel;            //!< cancel right after schedule?
    std::vector<std::uint32_t> slot;     //!< orchestrator-mix slot ids
};

KernelOps
makeKernelOps()
{
    KernelOps ops;
    for (int i = 0; i < kKernelEvents; ++i) {
        ops.at.push_back(sim::SimTime::fromNanos(
            static_cast<std::int64_t>(sim::mix64(i) % 1000000)));
        ops.delay.push_back(sim::Duration::minutes(
            2 + static_cast<int>(sim::mix64(i) % 13)));
        ops.complete.push_back(sim::Duration::millis(
            50 + static_cast<int>(sim::mix64(i ^ 0x51ab) % 200)));
        ops.cancel.push_back(sim::mix64(i ^ 0xbeef) % 16 != 0);
        ops.slot.push_back(
            static_cast<std::uint32_t>(sim::mix64(i) % 64));
    }
    return ops;
}

/** Schedule a batch at scattered times, then drain it. */
template <typename Queue>
void
scheduleStepWorkload(benchmark::State &state)
{
    const KernelOps ops = makeKernelOps();
    std::uint64_t fired = 0;
    for (auto _ : state) {
        Queue eq;
        for (int i = 0; i < kKernelEvents; ++i)
            eq.scheduleAt(ops.at[i], [&fired] { ++fired; });
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * kKernelEvents);
}

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    scheduleStepWorkload<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleStep);

void
BM_LegacyQueueScheduleStep(benchmark::State &state)
{
    scheduleStepWorkload<LegacyMapQueue>(state);
}
BENCHMARK(BM_LegacyQueueScheduleStep);

/**
 * The reap pattern (Obs 2): every idle transition schedules a reap
 * minutes out and nearly always cancels it again when the instance is
 * reused. Schedule+cancel dominates; almost nothing fires.
 */
template <typename Queue>
void
scheduleCancelChurnWorkload(benchmark::State &state)
{
    const KernelOps ops = makeKernelOps();
    const sim::Duration tick = sim::Duration::seconds(30);
    std::uint64_t fired = 0;
    for (auto _ : state) {
        Queue eq;
        for (int i = 0; i < kKernelEvents; ++i) {
            const auto id =
                eq.scheduleAfter(ops.delay[i], [&fired] { ++fired; });
            if (ops.cancel[i])
                eq.cancel(id);
            if (i % 256 == 255)
                eq.runUntil(eq.now() + tick);
        }
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * kKernelEvents);
}

void
BM_EventQueueScheduleCancelChurn(benchmark::State &state)
{
    scheduleCancelChurnWorkload<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleCancelChurn);

void
BM_LegacyQueueScheduleCancelChurn(benchmark::State &state)
{
    scheduleCancelChurnWorkload<LegacyMapQueue>(state);
}
BENCHMARK(BM_LegacyQueueScheduleCancelChurn);

/**
 * Orchestrator-shaped mix: per "request", a completion event that
 * fires, plus a reap event that is cancelled by the next request on
 * the same slot — interleaved with periodic horizon advances.
 */
template <typename Queue>
void
mixedOrchestratorWorkload(benchmark::State &state)
{
    constexpr int kSlots = 64;
    const KernelOps ops = makeKernelOps();
    const sim::Duration reap_delay = sim::Duration::minutes(4);
    const sim::Duration tick = sim::Duration::seconds(1);
    std::uint64_t completions = 0;
    for (auto _ : state) {
        Queue eq;
        std::uint64_t reap_ids[kSlots] = {};
        for (int i = 0; i < kKernelEvents; ++i) {
            const std::uint32_t slot = ops.slot[i];
            if (reap_ids[slot] != 0) {
                eq.cancel(reap_ids[slot]);
                reap_ids[slot] = 0;
            }
            eq.scheduleAfter(ops.complete[i],
                             [&completions] { ++completions; });
            reap_ids[slot] =
                eq.scheduleAfter(reap_delay, [&completions] {});
            if (i % 64 == 63)
                eq.runUntil(eq.now() + tick);
        }
        eq.run();
    }
    benchmark::DoNotOptimize(completions);
    state.SetItemsProcessed(state.iterations() * kKernelEvents);
}

void
BM_EventQueueMixedOrchestrator(benchmark::State &state)
{
    mixedOrchestratorWorkload<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueMixedOrchestrator);

void
BM_LegacyQueueMixedOrchestrator(benchmark::State &state)
{
    mixedOrchestratorWorkload<LegacyMapQueue>(state);
}
BENCHMARK(BM_LegacyQueueMixedOrchestrator);

faas::PlatformConfig
baseConfig(std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    return cfg;
}

void
BM_ReadTimestamp(benchmark::State &state)
{
    faas::Platform platform(baseConfig(1));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, 1);
    faas::SandboxView sbx = platform.sandbox(ids[0]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sbx.readTimestamp());
    }
}
BENCHMARK(BM_ReadTimestamp);

void
BM_Gen1FingerprintReading(benchmark::State &state)
{
    faas::Platform platform(baseConfig(2));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, 1);
    faas::SandboxView sbx = platform.sandbox(ids[0]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::readGen1(sbx));
    }
}
BENCHMARK(BM_Gen1FingerprintReading);

void
BM_QuantizeAndKey(benchmark::State &state)
{
    core::Gen1Reading reading;
    reading.cpu_model = "Intel Xeon CPU @ 2.00GHz";
    reading.frequency_hz = 2.0e9;
    reading.tboot_s = -123456.789;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::fingerprintKey(
            core::quantizeGen1(reading, 1.0)));
    }
}
BENCHMARK(BM_QuantizeAndKey);

void
BM_CTestGroup(benchmark::State &state)
{
    faas::Platform platform(baseConfig(3));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, 800);
    // One full host cohort (~11 instances).
    const hw::HostId host = platform.oracleHostOf(ids[0]);
    std::vector<faas::InstanceId> cohort;
    for (const auto id : ids)
        if (platform.oracleHostOf(id) == host)
            cohort.push_back(id);
    channel::RngChannel chan(platform);
    const auto m =
        static_cast<std::uint32_t>((cohort.size() + 2) / 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(chan.run(cohort, m));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cohort.size()));
}
BENCHMARK(BM_CTestGroup);

void
BM_VerifyScalable(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    faas::Platform platform(baseConfig(4));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions launch;
    launch.instances = n;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(platform, svc, launch);
    std::uint64_t tests = 0;
    for (auto _ : state) {
        channel::RngChannel chan(platform);
        const auto result = core::verifyScalable(
            platform, chan, obs.ids, obs.fp_keys, obs.class_keys);
        tests = result.group_tests;
        benchmark::DoNotOptimize(result);
    }
    state.counters["group_tests"] = static_cast<double>(tests);
}
BENCHMARK(BM_VerifyScalable)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

void
BM_VerifyPairwise(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    faas::Platform platform(baseConfig(5));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions launch;
    launch.instances = n;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(platform, svc, launch);
    channel::RngChannelConfig quick;
    quick.trials = 6;
    quick.detect_min = 3;
    for (auto _ : state) {
        channel::RngChannel chan(platform, quick);
        benchmark::DoNotOptimize(
            core::verifyPairwise(platform, chan, obs.ids));
    }
}
BENCHMARK(BM_VerifyPairwise)->Arg(100)->Arg(200);

void
BM_PlacementScaleOut(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        faas::Platform platform(baseConfig(6));
        const auto acct = platform.createAccount();
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        state.ResumeTiming();
        benchmark::DoNotOptimize(platform.connect(svc, n));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlacementScaleOut)->Arg(100)->Arg(800);

/**
 * Same placement workload with a live TraceSink + MetricsRegistry
 * attached. The delta against BM_PlacementScaleOut is the *enabled*
 * instrumentation cost; the disabled cost (EAAO_ENABLE_OBS=OFF) is
 * checked by comparing BM_PlacementScaleOut across build trees.
 */
void
BM_PlacementScaleOutTraced(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    obs::TrialObs slot;
    for (auto _ : state) {
        state.PauseTiming();
        slot.trace.clear();
        faas::PlatformConfig cfg = baseConfig(6);
        cfg.obs = slot.observer();
        faas::Platform platform(cfg);
        const auto acct = platform.createAccount();
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        state.ResumeTiming();
        benchmark::DoNotOptimize(platform.connect(svc, n));
    }
    benchmark::DoNotOptimize(slot.trace.size());
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlacementScaleOutTraced)->Arg(100)->Arg(800);

void
BM_FleetConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        faas::PlatformConfig cfg = baseConfig(7);
        cfg.profile.host_count =
            static_cast<std::uint32_t>(state.range(0));
        faas::Platform platform(cfg);
        benchmark::DoNotOptimize(platform.fleet().size());
    }
}
BENCHMARK(BM_FleetConstruction)->Arg(520)->Arg(1850);

} // namespace

BENCHMARK_MAIN();
