/**
 * @file
 * Micro-benchmarks (google-benchmark) for the library's primitives:
 * fingerprint readings, quantization, covert-channel group tests,
 * scalable-vs-pairwise verification scaling, and orchestrator
 * placement throughput.
 */

#include <benchmark/benchmark.h>

#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "faas/platform.hpp"

namespace {

using namespace eaao;

faas::PlatformConfig
baseConfig(std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    return cfg;
}

void
BM_ReadTimestamp(benchmark::State &state)
{
    faas::Platform platform(baseConfig(1));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, 1);
    faas::SandboxView sbx = platform.sandbox(ids[0]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sbx.readTimestamp());
    }
}
BENCHMARK(BM_ReadTimestamp);

void
BM_Gen1FingerprintReading(benchmark::State &state)
{
    faas::Platform platform(baseConfig(2));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, 1);
    faas::SandboxView sbx = platform.sandbox(ids[0]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::readGen1(sbx));
    }
}
BENCHMARK(BM_Gen1FingerprintReading);

void
BM_QuantizeAndKey(benchmark::State &state)
{
    core::Gen1Reading reading;
    reading.cpu_model = "Intel Xeon CPU @ 2.00GHz";
    reading.frequency_hz = 2.0e9;
    reading.tboot_s = -123456.789;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::fingerprintKey(
            core::quantizeGen1(reading, 1.0)));
    }
}
BENCHMARK(BM_QuantizeAndKey);

void
BM_CTestGroup(benchmark::State &state)
{
    faas::Platform platform(baseConfig(3));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, 800);
    // One full host cohort (~11 instances).
    const hw::HostId host = platform.oracleHostOf(ids[0]);
    std::vector<faas::InstanceId> cohort;
    for (const auto id : ids)
        if (platform.oracleHostOf(id) == host)
            cohort.push_back(id);
    channel::RngChannel chan(platform);
    const auto m =
        static_cast<std::uint32_t>((cohort.size() + 2) / 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(chan.run(cohort, m));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cohort.size()));
}
BENCHMARK(BM_CTestGroup);

void
BM_VerifyScalable(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    faas::Platform platform(baseConfig(4));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions launch;
    launch.instances = n;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(platform, svc, launch);
    std::uint64_t tests = 0;
    for (auto _ : state) {
        channel::RngChannel chan(platform);
        const auto result = core::verifyScalable(
            platform, chan, obs.ids, obs.fp_keys, obs.class_keys);
        tests = result.group_tests;
        benchmark::DoNotOptimize(result);
    }
    state.counters["group_tests"] = static_cast<double>(tests);
}
BENCHMARK(BM_VerifyScalable)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

void
BM_VerifyPairwise(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    faas::Platform platform(baseConfig(5));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions launch;
    launch.instances = n;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(platform, svc, launch);
    channel::RngChannelConfig quick;
    quick.trials = 6;
    quick.detect_min = 3;
    for (auto _ : state) {
        channel::RngChannel chan(platform, quick);
        benchmark::DoNotOptimize(
            core::verifyPairwise(platform, chan, obs.ids));
    }
}
BENCHMARK(BM_VerifyPairwise)->Arg(100)->Arg(200);

void
BM_PlacementScaleOut(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        faas::Platform platform(baseConfig(6));
        const auto acct = platform.createAccount();
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        state.ResumeTiming();
        benchmark::DoNotOptimize(platform.connect(svc, n));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlacementScaleOut)->Arg(100)->Arg(800);

void
BM_FleetConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        faas::PlatformConfig cfg = baseConfig(7);
        cfg.profile.host_count =
            static_cast<std::uint32_t>(state.range(0));
        faas::Platform platform(cfg);
        benchmark::DoNotOptimize(platform.fleet().size());
    }
}
BENCHMARK(BM_FleetConstruction)->Arg(520)->Arg(1850);

} // namespace

BENCHMARK_MAIN();
