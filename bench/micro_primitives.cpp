/**
 * @file
 * Micro-benchmarks (google-benchmark) for the library's primitives:
 * the event kernel (schedule/step, schedule+cancel churn, an
 * orchestrator-shaped mix — each against a legacy map-backed queue for
 * comparison), fingerprint readings, quantization, covert-channel
 * group tests, scalable-vs-pairwise verification scaling, and
 * orchestrator placement throughput.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <numeric>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "faas/platform.hpp"
#include "faas/sharded.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "snap/format.hpp"
#include "snap/snapshotter.hpp"

namespace {

using namespace eaao;

/**
 * The pre-slab event queue (heap of entries + unordered_map of
 * std::function callbacks + tombstone set), kept here verbatim as the
 * baseline the kernel benchmarks compare against.
 */
class LegacyMapQueue
{
  public:
    using Callback = std::function<void()>;

    sim::SimTime now() const { return now_; }

    std::uint64_t
    scheduleAt(sim::SimTime when, Callback cb)
    {
        const std::uint64_t id = next_id_++;
        heap_.push(Entry{when, next_seq_++, id});
        callbacks_.emplace(id, std::move(cb));
        return id;
    }

    std::uint64_t
    scheduleAfter(sim::Duration delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    bool
    cancel(std::uint64_t id)
    {
        auto it = callbacks_.find(id);
        if (it == callbacks_.end())
            return false;
        callbacks_.erase(it);
        cancelled_.insert(id);
        return true;
    }

    void
    run()
    {
        while (!heap_.empty())
            step();
    }

    void
    runUntil(sim::SimTime horizon)
    {
        while (!heap_.empty() && heap_.top().when <= horizon)
            step();
        now_ = horizon;
    }

  private:
    struct Entry
    {
        sim::SimTime when;
        std::uint64_t seq;
        std::uint64_t id;
    };

    struct EntryLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void
    step()
    {
        const Entry e = heap_.top();
        heap_.pop();
        if (cancelled_.erase(e.id))
            return;
        auto it = callbacks_.find(e.id);
        Callback cb = std::move(it->second);
        callbacks_.erase(it);
        now_ = e.when;
        cb();
    }

    sim::SimTime now_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_id_ = 1;
    std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::unordered_map<std::uint64_t, Callback> callbacks_;
};

constexpr int kKernelEvents = 4096;

/** Precomputed op sequence, so the timed loop is pure queue work. */
struct KernelOps
{
    std::vector<sim::SimTime> at;        //!< absolute schedule times
    std::vector<sim::Duration> delay;    //!< relative schedule delays
    std::vector<sim::Duration> complete; //!< orchestrator completion delays
    std::vector<bool> cancel;            //!< cancel right after schedule?
    std::vector<std::uint32_t> slot;     //!< orchestrator-mix slot ids
};

KernelOps
makeKernelOps()
{
    KernelOps ops;
    for (int i = 0; i < kKernelEvents; ++i) {
        ops.at.push_back(sim::SimTime::fromNanos(
            static_cast<std::int64_t>(sim::mix64(i) % 1000000)));
        ops.delay.push_back(sim::Duration::minutes(
            2 + static_cast<int>(sim::mix64(i) % 13)));
        ops.complete.push_back(sim::Duration::millis(
            50 + static_cast<int>(sim::mix64(i ^ 0x51ab) % 200)));
        ops.cancel.push_back(sim::mix64(i ^ 0xbeef) % 16 != 0);
        ops.slot.push_back(
            static_cast<std::uint32_t>(sim::mix64(i) % 64));
    }
    return ops;
}

/** Schedule a batch at scattered times, then drain it. */
template <typename Queue>
void
scheduleStepWorkload(benchmark::State &state)
{
    const KernelOps ops = makeKernelOps();
    std::uint64_t fired = 0;
    for (auto _ : state) {
        Queue eq;
        for (int i = 0; i < kKernelEvents; ++i)
            eq.scheduleAt(ops.at[i], [&fired] { ++fired; });
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * kKernelEvents);
}

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    scheduleStepWorkload<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleStep);

void
BM_LegacyQueueScheduleStep(benchmark::State &state)
{
    scheduleStepWorkload<LegacyMapQueue>(state);
}
BENCHMARK(BM_LegacyQueueScheduleStep);

/**
 * The reap pattern (Obs 2): every idle transition schedules a reap
 * minutes out and nearly always cancels it again when the instance is
 * reused. Schedule+cancel dominates; almost nothing fires.
 */
template <typename Queue>
void
scheduleCancelChurnWorkload(benchmark::State &state)
{
    const KernelOps ops = makeKernelOps();
    const sim::Duration tick = sim::Duration::seconds(30);
    std::uint64_t fired = 0;
    for (auto _ : state) {
        Queue eq;
        for (int i = 0; i < kKernelEvents; ++i) {
            const auto id =
                eq.scheduleAfter(ops.delay[i], [&fired] { ++fired; });
            if (ops.cancel[i])
                eq.cancel(id);
            if (i % 256 == 255)
                eq.runUntil(eq.now() + tick);
        }
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * kKernelEvents);
}

void
BM_EventQueueScheduleCancelChurn(benchmark::State &state)
{
    scheduleCancelChurnWorkload<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleCancelChurn);

void
BM_LegacyQueueScheduleCancelChurn(benchmark::State &state)
{
    scheduleCancelChurnWorkload<LegacyMapQueue>(state);
}
BENCHMARK(BM_LegacyQueueScheduleCancelChurn);

/**
 * Orchestrator-shaped mix: per "request", a completion event that
 * fires, plus a reap event that is cancelled by the next request on
 * the same slot — interleaved with periodic horizon advances.
 */
template <typename Queue>
void
mixedOrchestratorWorkload(benchmark::State &state)
{
    constexpr int kSlots = 64;
    const KernelOps ops = makeKernelOps();
    const sim::Duration reap_delay = sim::Duration::minutes(4);
    const sim::Duration tick = sim::Duration::seconds(1);
    std::uint64_t completions = 0;
    for (auto _ : state) {
        Queue eq;
        std::uint64_t reap_ids[kSlots] = {};
        for (int i = 0; i < kKernelEvents; ++i) {
            const std::uint32_t slot = ops.slot[i];
            if (reap_ids[slot] != 0) {
                eq.cancel(reap_ids[slot]);
                reap_ids[slot] = 0;
            }
            eq.scheduleAfter(ops.complete[i],
                             [&completions] { ++completions; });
            reap_ids[slot] =
                eq.scheduleAfter(reap_delay, [&completions] {});
            if (i % 64 == 63)
                eq.runUntil(eq.now() + tick);
        }
        eq.run();
    }
    benchmark::DoNotOptimize(completions);
    state.SetItemsProcessed(state.iterations() * kKernelEvents);
}

void
BM_EventQueueMixedOrchestrator(benchmark::State &state)
{
    mixedOrchestratorWorkload<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueMixedOrchestrator);

void
BM_LegacyQueueMixedOrchestrator(benchmark::State &state)
{
    mixedOrchestratorWorkload<LegacyMapQueue>(state);
}
BENCHMARK(BM_LegacyQueueMixedOrchestrator);

/**
 * Open-loop arrival storm (docs/load-engine.md): a deep backlog of
 * pre-materialized arrivals — the window-clamped generation pattern
 * leaves a full window of pending instants — each spawning a
 * completion ~100 ms out as it fires. A deep backlog is where the
 * heap pays O(log n) on every push and pop while the hierarchical
 * timing wheel buckets in O(1); the use_wheel = false arm is the
 * pure-heap reference.
 */
void
arrivalStormWorkload(benchmark::State &state, bool use_wheel)
{
    constexpr int kStormEvents = 1 << 20;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        sim::EventQueue eq(sim::SimTime(), use_wheel);
        for (int i = 0; i < kStormEvents; ++i) {
            // Arrival instants scattered over a 60 s window; each
            // completion lands 50-250 ms past its arrival, in the
            // wheel's near levels.
            const auto at = sim::SimTime::fromNanos(static_cast<
                std::int64_t>(sim::mix64(i) % 600'000'000'000ULL));
            const auto complete = sim::Duration::millis(
                50 + static_cast<int>(sim::mix64(i ^ 0x51ab) % 200));
            eq.scheduleAt(at, [&eq, &fired, complete] {
                eq.scheduleAfter(complete, [&fired] { ++fired; });
            });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * kStormEvents);
}

void
BM_WheelSchedulePop(benchmark::State &state)
{
    arrivalStormWorkload(state, /*use_wheel=*/true);
}
BENCHMARK(BM_WheelSchedulePop);

void
BM_HeapSchedulePop(benchmark::State &state)
{
    arrivalStormWorkload(state, /*use_wheel=*/false);
}
BENCHMARK(BM_HeapSchedulePop);

faas::PlatformConfig
baseConfig(std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    return cfg;
}

void
BM_ReadTimestamp(benchmark::State &state)
{
    faas::Platform platform(baseConfig(1));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, 1);
    faas::SandboxView sbx = platform.sandbox(ids[0]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sbx.readTimestamp());
    }
}
BENCHMARK(BM_ReadTimestamp);

void
BM_Gen1FingerprintReading(benchmark::State &state)
{
    faas::Platform platform(baseConfig(2));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, 1);
    faas::SandboxView sbx = platform.sandbox(ids[0]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::readGen1(sbx));
    }
}
BENCHMARK(BM_Gen1FingerprintReading);

void
BM_QuantizeAndKey(benchmark::State &state)
{
    core::Gen1Reading reading;
    reading.cpu_model = "Intel Xeon CPU @ 2.00GHz";
    reading.frequency_hz = 2.0e9;
    reading.tboot_s = -123456.789;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::fingerprintKey(
            core::quantizeGen1(reading, 1.0)));
    }
}
BENCHMARK(BM_QuantizeAndKey);

void
BM_CTestGroup(benchmark::State &state)
{
    faas::Platform platform(baseConfig(3));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, 800);
    // One full host cohort (~11 instances).
    const hw::HostId host = platform.oracleHostOf(ids[0]);
    std::vector<faas::InstanceId> cohort;
    for (const auto id : ids)
        if (platform.oracleHostOf(id) == host)
            cohort.push_back(id);
    channel::RngChannel chan(platform);
    const auto m =
        static_cast<std::uint32_t>((cohort.size() + 2) / 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(chan.run(cohort, m));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cohort.size()));
}
BENCHMARK(BM_CTestGroup);

void
BM_VerifyScalable(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    faas::Platform platform(baseConfig(4));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions launch;
    launch.instances = n;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(platform, svc, launch);
    std::uint64_t tests = 0;
    for (auto _ : state) {
        channel::RngChannel chan(platform);
        const auto result = core::verifyScalable(
            platform, chan, obs.ids, obs.fp_keys, obs.class_keys);
        tests = result.group_tests;
        benchmark::DoNotOptimize(result);
    }
    state.counters["group_tests"] = static_cast<double>(tests);
}
BENCHMARK(BM_VerifyScalable)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

void
BM_VerifyPairwise(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    faas::Platform platform(baseConfig(5));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions launch;
    launch.instances = n;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(platform, svc, launch);
    channel::RngChannelConfig quick;
    quick.trials = 6;
    quick.detect_min = 3;
    for (auto _ : state) {
        channel::RngChannel chan(platform, quick);
        benchmark::DoNotOptimize(
            core::verifyPairwise(platform, chan, obs.ids));
    }
}
BENCHMARK(BM_VerifyPairwise)->Arg(100)->Arg(200);

void
BM_PlacementScaleOut(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        faas::Platform platform(baseConfig(6));
        const auto acct = platform.createAccount();
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        state.ResumeTiming();
        benchmark::DoNotOptimize(platform.connect(svc, n));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlacementScaleOut)->Arg(100)->Arg(800);

/**
 * Same placement workload with a live TraceSink + MetricsRegistry
 * attached. The delta against BM_PlacementScaleOut is the *enabled*
 * instrumentation cost; the disabled cost (EAAO_ENABLE_OBS=OFF) is
 * checked by comparing BM_PlacementScaleOut across build trees.
 */
void
BM_PlacementScaleOutTraced(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    obs::TrialObs slot;
    for (auto _ : state) {
        state.PauseTiming();
        slot.trace.clear();
        faas::PlatformConfig cfg = baseConfig(6);
        cfg.obs = slot.observer();
        faas::Platform platform(cfg);
        const auto acct = platform.createAccount();
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        state.ResumeTiming();
        benchmark::DoNotOptimize(platform.connect(svc, n));
    }
    benchmark::DoNotOptimize(slot.trace.size());
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlacementScaleOutTraced)->Arg(100)->Arg(800);

/**
 * Placement hot path: indexed (min-load tree + dense loads) vs the
 * retained reference-scan decision path. Same pattern as
 * LegacyMapQueue: `OrchestratorConfig::reference_scan` keeps the
 * pre-index implementation alive in the library, and both modes make
 * byte-identical decisions, so the delta is pure lookup cost.
 */
faas::PlatformConfig
placementConfig(std::uint64_t seed, bool legacy)
{
    faas::PlatformConfig cfg = baseConfig(seed);
    cfg.orchestrator.reference_scan = legacy;
    return cfg;
}

void
pickHostWorkload(benchmark::State &state, bool legacy)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    // The base-prefix scan is demand-sized (prefix ~ live/spread),
    // so the account must already carry live load for placement cost
    // to matter; a cold account's prefix is a handful of hosts. The
    // per-service quota is 1000, so warm two services.
    constexpr std::uint32_t kWarmInstances = 1000;
    for (auto _ : state) {
        state.PauseTiming();
        faas::Platform platform(placementConfig(8, legacy));
        const auto acct = platform.createAccount();
        const auto warm =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        platform.connect(warm, kWarmInstances);
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        state.ResumeTiming();
        benchmark::DoNotOptimize(platform.connect(svc, n));
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_PickHost(benchmark::State &state)
{
    pickHostWorkload(state, false);
}
BENCHMARK(BM_PickHost)->Arg(100)->Arg(800);

void
BM_PickHostLegacy(benchmark::State &state)
{
    pickHostWorkload(state, true);
}
BENCHMARK(BM_PickHostLegacy)->Arg(100)->Arg(800);

/**
 * Request routing against a large pinned active pool: the routing
 * index picks the least-loaded instance in O(log n); the reference
 * path scans the whole active list per request. One multi-hour request
 * pins each pool instance so none of them idles out mid-benchmark.
 */
void
routeRequestWorkload(benchmark::State &state, bool legacy)
{
    const auto pool = static_cast<std::uint32_t>(state.range(0));
    faas::Platform platform(placementConfig(9, legacy));
    faas::Orchestrator &orch = platform.orchestrator();
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    orch.setMaxConcurrency(svc, 4);
    platform.connect(svc, pool);
    for (std::uint32_t p = 0; p < pool; ++p)
        orch.routeRequest(svc, sim::Duration::hours(48));
    std::uint64_t routed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(orch.routeRequest(
            svc, sim::Duration::fromSecondsF(0.05)));
        if (++routed % 8 == 0)
            platform.advance(sim::Duration::fromSecondsF(0.05));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(routed));
}

void
BM_RouteRequest(benchmark::State &state)
{
    routeRequestWorkload(state, false);
}
BENCHMARK(BM_RouteRequest)->Arg(100)->Arg(700);

void
BM_RouteRequestLegacy(benchmark::State &state)
{
    routeRequestWorkload(state, true);
}
BENCHMARK(BM_RouteRequestLegacy)->Arg(100)->Arg(700);

/**
 * Uniform fingerprint keys put every instance in one oversized group,
 * driving verifyScalable's recursive-resolution (arena) path end to
 * end through the real covert channel.
 */
void
BM_VerifyScalableUniformFp(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    faas::Platform platform(baseConfig(10));
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);
    const auto ids = platform.connect(svc, n);
    const std::vector<std::uint64_t> fp_keys(ids.size(), 7);
    for (auto _ : state) {
        channel::RngChannel chan(platform);
        benchmark::DoNotOptimize(
            core::verifyScalable(platform, chan, ids, fp_keys, {}));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VerifyScalableUniformFp)->Arg(300);

/**
 * Verification-resolution kernels driven by a host-assignment oracle
 * instead of the covert channel, isolating the bookkeeping the arena
 * rewrite removed (per-recursion vector copies, per-merge std::map)
 * from channel RNG work. The legacy kernel is the pre-arena
 * implementation kept verbatim; the arena kernel mirrors the Run in
 * src/core/verify.cpp.
 */
class KernelDsu
{
  public:
    explicit KernelDsu(std::size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    merge(std::size_t a, std::size_t b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent_[std::max(a, b)] = std::min(a, b);
    }

  private:
    std::vector<std::size_t> parent_;
};

/** positive[i]: members sharing member i's host in the group >= m. */
std::vector<char>
oracleOutcome(const std::vector<std::uint32_t> &host_of,
              const std::size_t *members, std::size_t count,
              std::uint32_t m)
{
    std::vector<char> positive(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t same = 0;
        for (std::size_t j = 0; j < count; ++j)
            same += host_of[members[j]] == host_of[members[i]] ? 1 : 0;
        positive[i] = same >= m ? 1 : 0;
    }
    return positive;
}

/** The pre-arena resolution kernel, verbatim modulo the test oracle. */
struct LegacyResolveKernel
{
    const std::vector<std::uint32_t> *host_of;
    std::uint32_t m = 2;
    std::uint32_t m_max = 16;
    KernelDsu dsu;
    std::uint64_t tests = 0;

    explicit LegacyResolveKernel(const std::vector<std::uint32_t> &h)
        : host_of(&h), dsu(h.size())
    {
    }

    std::vector<char>
    test(const std::vector<std::size_t> &members, std::uint32_t thresh)
    {
        ++tests;
        return oracleOutcome(*host_of, members.data(), members.size(),
                             thresh);
    }

    std::uint32_t
    oneShotThreshold(std::size_t g) const
    {
        const auto needed = static_cast<std::uint32_t>((g + 2) / 2);
        return std::clamp(needed, m, m_max);
    }

    void
    resolve(const std::vector<std::size_t> &members)
    {
        if (members.size() <= 1)
            return;
        if (members.size() > 2ULL * m_max - 1) {
            const std::size_t half = members.size() / 2;
            std::vector<std::size_t> a(members.begin(),
                                       members.begin() + half);
            std::vector<std::size_t> b(members.begin() + half,
                                       members.end());
            resolve(a);
            resolve(b);
            mergeAcross(members);
            return;
        }
        const std::uint32_t thresh = oneShotThreshold(members.size());
        const auto result = test(members, thresh);
        std::vector<std::size_t> positives, negatives;
        for (std::size_t i = 0; i < members.size(); ++i) {
            (result[i] ? positives : negatives).push_back(members[i]);
        }
        if (positives.size() >= thresh) {
            for (std::size_t i = 1; i < positives.size(); ++i)
                dsu.merge(positives[0], positives[i]);
            resolve(negatives);
            return;
        }
        if (members.size() <= 2 || thresh == m)
            return;
        const std::size_t half = members.size() / 2;
        std::vector<std::size_t> a(members.begin(),
                                   members.begin() + half);
        std::vector<std::size_t> b(members.begin() + half,
                                   members.end());
        resolve(a);
        resolve(b);
        mergeAcross(members);
    }

    void
    mergeAcross(const std::vector<std::size_t> &members)
    {
        std::map<std::size_t, std::size_t> rep_of_root;
        for (const std::size_t idx : members)
            rep_of_root.emplace(dsu.find(idx), idx);
        if (rep_of_root.size() < 2)
            return;
        std::vector<std::size_t> reps;
        reps.reserve(rep_of_root.size());
        for (const auto &[root, rep] : rep_of_root)
            reps.push_back(rep);
        const auto result = test(reps, m);
        std::vector<std::size_t> positives;
        for (std::size_t i = 0; i < reps.size(); ++i) {
            if (result[i])
                positives.push_back(reps[i]);
        }
        if (positives.size() < 2)
            return;
        if (positives.size() == 2) {
            dsu.merge(positives[0], positives[1]);
            return;
        }
        for (std::size_t i = 0; i < positives.size(); ++i) {
            for (std::size_t j = i + 1; j < positives.size(); ++j) {
                if (dsu.find(positives[i]) == dsu.find(positives[j]))
                    continue;
                const auto pr =
                    test({positives[i], positives[j]}, m);
                if (pr[0] && pr[1])
                    dsu.merge(positives[i], positives[j]);
            }
        }
    }
};

/** The arena kernel, mirroring src/core/verify.cpp's rewritten Run. */
struct ArenaResolveKernel
{
    const std::vector<std::uint32_t> *host_of;
    std::uint32_t m = 2;
    std::uint32_t m_max = 16;
    KernelDsu dsu;
    std::uint64_t tests = 0;

    explicit ArenaResolveKernel(const std::vector<std::uint32_t> &h)
        : host_of(&h), dsu(h.size())
    {
        seen_.assign(h.size(), 0);
        arena_.reserve(2 * h.size());
    }

    std::vector<char>
    test(const std::size_t *members, std::size_t count,
         std::uint32_t thresh)
    {
        ++tests;
        return oracleOutcome(*host_of, members, count, thresh);
    }

    std::uint32_t
    oneShotThreshold(std::size_t g) const
    {
        const auto needed = static_cast<std::uint32_t>((g + 2) / 2);
        return std::clamp(needed, m, m_max);
    }

    void
    resolve(const std::vector<std::size_t> &members)
    {
        const std::size_t lo = arena_.size();
        arena_.insert(arena_.end(), members.begin(), members.end());
        resolveRange(lo, arena_.size());
        arena_.resize(lo);
    }

    void
    resolveRange(std::size_t lo, std::size_t hi)
    {
        const std::size_t count = hi - lo;
        if (count <= 1)
            return;
        if (count > 2ULL * m_max - 1) {
            const std::size_t mid = lo + count / 2;
            resolveRange(lo, mid);
            resolveRange(mid, hi);
            mergeAcrossSpan(arena_.data() + lo, count);
            return;
        }
        const std::uint32_t thresh = oneShotThreshold(count);
        const auto result = test(arena_.data() + lo, count, thresh);
        std::size_t n_pos = 0;
        for (std::size_t i = 0; i < count; ++i)
            n_pos += result[i] ? 1 : 0;
        if (n_pos >= thresh) {
            std::size_t anchor = count;
            const std::size_t neg_lo = arena_.size();
            for (std::size_t i = 0; i < count; ++i) {
                const std::size_t idx = arena_[lo + i];
                if (result[i]) {
                    if (anchor == count)
                        anchor = idx;
                    else
                        dsu.merge(anchor, idx);
                } else {
                    arena_.push_back(idx);
                }
            }
            resolveRange(neg_lo, arena_.size());
            arena_.resize(neg_lo);
            return;
        }
        if (count <= 2 || thresh == m)
            return;
        const std::size_t mid = lo + count / 2;
        resolveRange(lo, mid);
        resolveRange(mid, hi);
        mergeAcrossSpan(arena_.data() + lo, count);
    }

    void
    mergeAcrossSpan(const std::size_t *members, std::size_t count)
    {
        ++epoch_;
        reps_.clear();
        for (std::size_t i = 0; i < count; ++i) {
            const std::size_t idx = members[i];
            const std::size_t root = dsu.find(idx);
            if (seen_[root] != epoch_) {
                seen_[root] = epoch_;
                reps_.push_back({root, idx});
            }
        }
        if (reps_.size() < 2)
            return;
        std::sort(reps_.begin(), reps_.end());
        rep_members_.clear();
        for (const auto &[root, rep] : reps_)
            rep_members_.push_back(rep);
        const auto result =
            test(rep_members_.data(), rep_members_.size(), m);
        positives_.clear();
        for (std::size_t i = 0; i < rep_members_.size(); ++i) {
            if (result[i])
                positives_.push_back(rep_members_[i]);
        }
        if (positives_.size() < 2)
            return;
        if (positives_.size() == 2) {
            dsu.merge(positives_[0], positives_[1]);
            return;
        }
        for (std::size_t i = 0; i < positives_.size(); ++i) {
            for (std::size_t j = i + 1; j < positives_.size(); ++j) {
                if (dsu.find(positives_[i]) == dsu.find(positives_[j]))
                    continue;
                const std::size_t pair[2] = {positives_[i],
                                             positives_[j]};
                const auto pr = test(pair, 2, m);
                if (pr[0] && pr[1])
                    dsu.merge(positives_[i], positives_[j]);
            }
        }
    }

    std::vector<std::size_t> arena_;
    std::vector<std::uint64_t> seen_;
    std::uint64_t epoch_ = 0;
    std::vector<std::pair<std::size_t, std::size_t>> reps_;
    std::vector<std::size_t> rep_members_;
    std::vector<std::size_t> positives_;
};

template <typename Kernel>
void
verifyResolveWorkload(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint32_t> host_of(n);
    const auto hosts = static_cast<std::uint32_t>(n / 11 + 1);
    for (std::size_t i = 0; i < n; ++i) {
        host_of[i] =
            static_cast<std::uint32_t>(sim::mix64(i ^ 0x7e57) % hosts);
    }
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    std::uint64_t tests = 0;
    for (auto _ : state) {
        Kernel kernel(host_of);
        kernel.resolve(all);
        tests = kernel.tests;
        benchmark::DoNotOptimize(tests);
    }
    state.counters["kernel_tests"] = static_cast<double>(tests);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_VerifyResolveKernel(benchmark::State &state)
{
    verifyResolveWorkload<ArenaResolveKernel>(state);
}
BENCHMARK(BM_VerifyResolveKernel)->Arg(200)->Arg(800);

void
BM_VerifyResolveKernelLegacy(benchmark::State &state)
{
    verifyResolveWorkload<LegacyResolveKernel>(state);
}
BENCHMARK(BM_VerifyResolveKernelLegacy)->Arg(200)->Arg(800);

void
BM_FleetConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        faas::PlatformConfig cfg = baseConfig(7);
        cfg.profile.host_count =
            static_cast<std::uint32_t>(state.range(0));
        faas::Platform platform(cfg);
        benchmark::DoNotOptimize(platform.fleet().size());
    }
}
BENCHMARK(BM_FleetConstruction)->Arg(520)->Arg(1850);

// --------------------------------------------------------------- snapshot

/**
 * A primed sharded platform paused at a pre-fold window barrier — the
 * state BM_SnapshotCapture serializes and BM_SnapshotRestore loads.
 * Arg(n) is the per-lane priming burst size, so it scales the
 * instance/trace tables that dominate the image.
 */
std::vector<faas::ShardOp>
snapshotWorkloadOps(faas::ShardedPlatform &platform, std::uint32_t burst,
                    sim::SimTime &horizon)
{
    using Kind = faas::ShardOp::Kind;
    std::vector<faas::ShardOp> ops;
    for (std::uint32_t lane = 0; lane < platform.laneCount(); ++lane) {
        const faas::AccountId acct = platform.createAccount(lane, 10'000);
        const faas::ServiceId svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        sim::SimTime t;
        std::uint32_t step = 0;
        for (std::uint32_t round = 0; round < 3; ++round) {
            faas::ShardOp connect;
            connect.kind = Kind::Connect;
            connect.at = t;
            connect.step = step++;
            connect.service = svc;
            connect.account = acct;
            connect.a = burst;
            ops.push_back(connect);
            t = t + sim::Duration::minutes(1);
            faas::ShardOp disconnect = connect;
            disconnect.kind = Kind::Disconnect;
            disconnect.at = t;
            disconnect.step = step++;
            ops.push_back(disconnect);
            t = t + sim::Duration::minutes(4);
        }
        horizon = t + sim::Duration::minutes(5);
    }
    return ops;
}

faas::ShardedConfig
snapshotConfig()
{
    faas::ShardedConfig cfg;
    cfg.profile.host_count = 1100; // 10 lanes
    cfg.seed = 4242;
    cfg.shards = 10;
    cfg.threads = 1;
    return cfg;
}

/** Advance a fresh platform to the last priming barrier, pre-fold. */
void
primeToBarrier(faas::ShardedPlatform &platform, std::uint32_t burst)
{
    sim::SimTime horizon;
    std::vector<faas::ShardOp> ops =
        snapshotWorkloadOps(platform, burst, horizon);
    platform.beginRun(std::move(ops), horizon);
    for (int w = 0; w < 28; ++w) { // 14 min of 30 s windows
        platform.advanceWindow();
        platform.completeWindow();
    }
    platform.advanceWindow(); // pre-fold capture point
}

void
BM_SnapshotCapture(benchmark::State &state)
{
    faas::ShardedPlatform platform(snapshotConfig());
    primeToBarrier(platform, static_cast<std::uint32_t>(state.range(0)));
    std::size_t bytes = 0;
    for (auto _ : state) {
        std::vector<std::uint8_t> image = snap::Snapshotter::capture(platform);
        bytes = image.size();
        benchmark::DoNotOptimize(image.data());
    }
    state.counters["snapshot_bytes"] = static_cast<double>(bytes);
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                            static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotCapture)->Arg(50)->Arg(400);

void
BM_SnapshotRestore(benchmark::State &state)
{
    faas::ShardedPlatform primed(snapshotConfig());
    primeToBarrier(primed, static_cast<std::uint32_t>(state.range(0)));
    const std::vector<std::uint8_t> image = snap::Snapshotter::capture(primed);

    // The fork-many fast path: parse once, restore per iteration into
    // one reused platform.
    snap::SnapshotReader reader;
    std::string error;
    if (!reader.parse(image, error))
        state.SkipWithError(error.c_str());
    faas::ShardedPlatform target(snapshotConfig());
    for (auto _ : state) {
        if (!snap::Snapshotter::restore(reader, target, error))
            state.SkipWithError(error.c_str());
        benchmark::DoNotOptimize(target.laneCount());
    }
    state.counters["snapshot_bytes"] = static_cast<double>(image.size());
    state.SetBytesProcessed(static_cast<std::int64_t>(image.size()) *
                            static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotRestore)->Arg(50)->Arg(400);

} // namespace

BENCHMARK_MAIN();
