/**
 * @file
 * Figure 6 / Experiment 1: instance distribution across hosts and the
 * decay of idle instances after disconnecting.
 *
 * Protocol (paper Section 5.1): launch 800 instances of one service in
 * us-east1, record the host footprint and per-host instance counts,
 * then disconnect and sample the number of surviving idle instances
 * over time (the paper captures SIGTERM; we read the oracle state,
 * which records the same termination instant).
 */

#include <cstdio>
#include <map>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"

int
main()
{
    using namespace eaao;

    std::printf("=== Figure 6 / Experiment 1: instance distribution & "
                "idle termination (us-east1) ===\n\n");

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 61;
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);

    const auto ids = platform.connect(svc, 800);

    // Observation 1: near-uniform spread.
    std::map<hw::HostId, int> per_host;
    for (const auto id : ids)
        ++per_host[platform.oracleHostOf(id)];
    std::map<int, int> count_hist;
    for (const auto &[host, count] : per_host)
        ++count_hist[count];

    std::printf("800 instances placed onto %zu hosts "
                "(paper: 75 hosts)\n\n", per_host.size());
    core::TextTable dist;
    dist.header({"instances/host", "hosts"});
    for (const auto &[count, hosts] : count_hist)
        dist.row({core::format("%d", count), core::format("%d", hosts)});
    dist.print();

    // Observation 2 / Figure 6: disconnect, then watch idle decay.
    platform.disconnectAll(svc);
    std::printf("\nidle instances after disconnecting:\n\n");
    core::TextTable decay;
    decay.header({"minutes", "idle instances"});
    for (int half_min = 0; half_min <= 32; ++half_min) {
        int idle = 0;
        for (const auto id : ids) {
            idle += (platform.instanceInfo(id).state ==
                     faas::InstanceState::Idle);
        }
        decay.row({core::format("%.1f", half_min * 0.5),
                   core::format("%d", idle)});
        platform.advance(sim::Duration::seconds(30));
    }
    decay.print();

    std::printf("\npaper shape: all instances survive the first ~2 "
                "minutes, then are\ngradually reaped; practically all "
                "are terminated by ~12 minutes.\n");
    return 0;
}
