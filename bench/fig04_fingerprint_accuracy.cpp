/**
 * @file
 * Figure 4: Gen 1 fingerprint accuracy (FMI / precision / recall) as a
 * function of the T_boot rounding precision p_boot.
 *
 * Protocol (paper Section 4.4.1): in each data center, launch 800
 * concurrent instances, record each instance's raw T_boot reading,
 * generate the co-location ground truth with the scalable covert-
 * channel methodology, then sweep p_boot and score the fingerprints
 * with pair-counting metrics. Repeated across runs; we report mean and
 * standard deviation.
 */

#include <cstdio>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "exp/trial_runner.hpp"
#include "stats/clustering.hpp"
#include "stats/summary.hpp"
#include "support/bench_timer.hpp"
#include "support/options.hpp"

namespace {

constexpr std::uint32_t kInstances = 800;
constexpr int kRunsPerDc = 3;

struct RunData
{
    std::vector<eaao::core::Gen1Reading> readings;
    std::vector<std::uint64_t> truth; // channel-verified clusters
};

RunData
collectRun(const eaao::faas::DataCenterProfile &profile,
           std::uint64_t seed)
{
    using namespace eaao;
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.seed = seed;
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);

    core::LaunchOptions launch;
    launch.instances = kInstances;
    launch.disconnect_after = false;
    const core::LaunchObservation obs =
        core::launchAndObserve(platform, svc, launch);

    channel::RngChannel chan(platform);
    const core::VerifyResult verified = core::verifyScalable(
        platform, chan, obs.ids, obs.fp_keys, obs.class_keys);

    RunData run;
    run.readings = obs.readings;
    run.truth = verified.cluster_of;
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eaao;
    const unsigned threads = support::threadsFromArgs(argc, argv);

    const std::vector<double> p_boots = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
                                         3e-2, 1e-1, 3e-1, 1.0,  3.0,
                                         1e1,  3e1,  1e2,  3e2,  1e3};

    const std::vector<faas::DataCenterProfile> dcs = {
        faas::DataCenterProfile::usEast1(),
        faas::DataCenterProfile::usCentral1(),
        faas::DataCenterProfile::usWest1(),
    };

    std::printf("=== Figure 4: fingerprint accuracy vs p_boot "
                "(%u instances, %d runs x %zu DCs) ===\n\n",
                kInstances, kRunsPerDc, dcs.size());

    // Collect all runs once — each (DC, run) pair is an independent
    // trial fanned out across the worker pool; slot-per-trial results
    // keep the sweep below byte-identical for any thread count. The
    // p_boot sweep itself is offline over the recorded readings.
    support::BenchTimer timer("fig04_fingerprint_accuracy", threads,
                              /*seed=*/1000);
    const std::vector<RunData> runs = exp::runTrials(
        dcs.size() * kRunsPerDc, /*seed=*/1000,
        [&](exp::TrialContext &trial) {
            const std::size_t d = trial.index / kRunsPerDc;
            const std::size_t r = trial.index % kRunsPerDc;
            return collectRun(dcs[d], 1000 + d * 17 + r);
        },
        threads);
    support::maybeWriteBenchJson(argc, argv, timer.stop());

    core::TextTable table;
    table.header({"p_boot", "FMI", "FMI(sd)", "precision", "prec(sd)",
                  "recall", "rec(sd)"});

    for (const double p_boot : p_boots) {
        stats::OnlineStats fmi, precision, recall;
        for (const RunData &run : runs) {
            std::vector<std::uint64_t> keys;
            keys.reserve(run.readings.size());
            for (const auto &reading : run.readings) {
                keys.push_back(core::fingerprintKey(
                    core::quantizeGen1(reading, p_boot)));
            }
            const stats::PairConfusion pc =
                stats::comparePairs(keys, run.truth);
            fmi.add(pc.fmi());
            precision.add(pc.precision());
            recall.add(pc.recall());
        }
        table.row({core::format("%8.0e s", p_boot),
                   core::format("%.4f", fmi.mean()),
                   core::format("%.4f", fmi.stddev()),
                   core::format("%.4f", precision.mean()),
                   core::format("%.4f", precision.stddev()),
                   core::format("%.4f", recall.mean()),
                   core::format("%.4f", recall.stddev())});
    }
    table.print();

    std::printf("\npaper shape: FMI ~0.9999 for 100 ms <= p_boot <= 1 s;"
                "\n             recall degrades at small p_boot, "
                "precision at large p_boot.\n");
    return 0;
}
