/**
 * @file
 * Figure 10 / Experiment 4 (episodes): helper-host footprints of
 * different services overlap but differ.
 *
 * Protocol (paper Section 5.1): six episodes; each episode deploys a
 * fresh service and launches it six times (800 instances, 10-minute
 * interval). The helper footprint of an episode is the difference
 * between the host footprint after the sixth launch and after the
 * first (base) launch. The cumulative helper footprint keeps growing
 * across episodes — each service uses some new helper hosts — while
 * per-episode increments shrink, showing overlap.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "obs/export.hpp"

int
main(int argc, char **argv)
{
    using namespace eaao;

    const obs::ObsConfig obs_cfg = obs::ObsConfig::fromArgs(argc, argv);
    obs::TrialSet obs_set(obs_cfg);
    obs_set.prepare(1);

    std::printf("=== Figure 10 / Experiment 4 episodes: helper hosts "
                "across services (us-east1) ===\n\n");

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 101;
    cfg.obs = obs_set.observer(0);
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();

    core::TextTable table;
    table.header({"episode", "apparent helper hosts",
                  "cumulative helper hosts"});
    std::set<std::uint64_t> cumulative_helpers;

    for (int episode = 1; episode <= 6; ++episode) {
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);

        core::PrimeOptions prime;
        prime.keep_last_connected = false;
        const auto launches = primeService(platform, svc, prime);

        const std::set<std::uint64_t> base =
            launches.front().apparentHosts();
        std::set<std::uint64_t> all;
        for (const auto &obs : launches) {
            const auto hosts = obs.apparentHosts();
            all.insert(hosts.begin(), hosts.end());
        }
        std::set<std::uint64_t> helpers;
        for (const auto key : all) {
            if (base.count(key) == 0)
                helpers.insert(key);
        }
        cumulative_helpers.insert(helpers.begin(), helpers.end());
        table.row({core::format("%d", episode),
                   core::format("%zu", helpers.size()),
                   core::format("%zu", cumulative_helpers.size())});

        // Cool-down between episodes so the next service starts cold.
        platform.advance(sim::Duration::minutes(45));
    }
    table.print();

    std::printf("\npaper shape: the cumulative helper footprint grows "
                "after every episode,\nbut by less than the episode's "
                "own helper count — helper sets of different\nservices "
                "overlap without coinciding (Observation 6).\n");
    obs::writeOutputs(obs_cfg, obs_set);
    return 0;
}
