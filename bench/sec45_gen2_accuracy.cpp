/**
 * @file
 * Section 4.5: accuracy of the Gen 2 fingerprint (kernel-refined host
 * TSC frequency).
 *
 * Protocol: same setup as the Gen 1 accuracy evaluation — 800
 * concurrent Gen 2 instances per data center, ground truth from the
 * covert channel — but fingerprints are the refined frequency read
 * inside the guest. The paper reports FMI 0.66 and precision 0.48
 * (about 2.0 hosts share a fingerprint on average), but zero false
 * negatives, which allows fully parallel Step-2 verification and no
 * Step 3.
 */

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"
#include "stats/summary.hpp"

namespace {

constexpr std::uint32_t kInstances = 800;
constexpr int kRunsPerDc = 3;

} // namespace

int
main()
{
    using namespace eaao;

    std::printf("=== Section 4.5: Gen 2 fingerprint accuracy "
                "(%u instances, %d runs x 3 DCs) ===\n\n",
                kInstances, kRunsPerDc);

    const std::vector<faas::DataCenterProfile> dcs = {
        faas::DataCenterProfile::usEast1(),
        faas::DataCenterProfile::usCentral1(),
        faas::DataCenterProfile::usWest1(),
    };

    stats::OnlineStats fmi, precision, recall, hosts_per_fp;
    std::uint64_t total_fn = 0;
    stats::OnlineStats waves_parallel, waves_serial;

    for (std::size_t d = 0; d < dcs.size(); ++d) {
        for (int run = 0; run < kRunsPerDc; ++run) {
            faas::PlatformConfig cfg;
            cfg.profile = dcs[d];
            cfg.seed = 4500 + d * 31 + run;
            faas::Platform platform(cfg);
            const auto acct = platform.createAccount();
            const auto svc =
                platform.deployService(acct, faas::ExecEnv::Gen2);

            core::LaunchOptions launch;
            launch.instances = kInstances;
            launch.disconnect_after = false;
            const core::LaunchObservation obs =
                core::launchAndObserve(platform, svc, launch);

            std::vector<std::uint64_t> oracle;
            for (const auto id : obs.ids)
                oracle.push_back(platform.oracleHostOf(id));

            const auto pc = stats::comparePairs(obs.fp_keys, oracle);
            fmi.add(pc.fmi());
            precision.add(pc.precision());
            recall.add(pc.recall());
            total_fn += pc.fn;

            // Hosts per fingerprint (averaged over fingerprints).
            std::map<std::uint64_t, std::set<std::uint64_t>> by_fp;
            for (std::size_t i = 0; i < obs.fp_keys.size(); ++i)
                by_fp[obs.fp_keys[i]].insert(oracle[i]);
            double sum = 0.0;
            for (const auto &[key, hosts] : by_fp)
                sum += static_cast<double>(hosts.size());
            hosts_per_fp.add(sum / static_cast<double>(by_fp.size()));

            // Verification benefit: Gen 2 allows fully parallel Step 2
            // and skips Step 3.
            channel::RngChannel chan_par(platform);
            core::VerifyOptions par;
            par.no_false_negatives = true;
            const auto vp = core::verifyScalable(
                platform, chan_par, obs.ids, obs.fp_keys,
                obs.class_keys, par);
            waves_parallel.add(static_cast<double>(vp.waves));

            channel::RngChannel chan_ser(platform);
            core::VerifyOptions ser;
            ser.parallelize = false;
            const auto vs = core::verifyScalable(
                platform, chan_ser, obs.ids, obs.fp_keys,
                obs.class_keys, ser);
            waves_serial.add(static_cast<double>(vs.waves));
        }
    }

    core::TextTable table;
    table.header({"metric", "measured", "paper"});
    table.row({"FMI", core::format("%.3f", fmi.mean()), "0.66"});
    table.row({"precision", core::format("%.3f", precision.mean()),
               "0.48"});
    table.row({"recall", core::format("%.3f", recall.mean()), "1.0"});
    table.row({"false negatives (total)",
               core::format("%llu",
                            static_cast<unsigned long long>(total_fn)),
               "0 (structural)"});
    table.row({"avg hosts per fingerprint",
               core::format("%.2f", hosts_per_fp.mean()), "2.0"});
    table.row({"verification waves, parallel Step 2",
               core::format("%.1f", waves_parallel.mean()), "-"});
    table.row({"verification waves, serialized",
               core::format("%.1f", waves_serial.mean()), "-"});
    table.print();

    std::printf("\npaper shape: low precision (multiple hosts share a "
                "refined frequency) but\nzero false negatives, so "
                "ground truth can still be generated efficiently\n"
                "with fully-parallel Step 2 and no Step 3.\n");
    return 0;
}
