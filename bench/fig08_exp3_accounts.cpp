/**
 * @file
 * Figure 8 / Experiment 3: apparent-host footprint across accounts.
 *
 * Protocol (paper Section 5.1): six cold launches at 45-minute
 * intervals, where launches 1-2 use Account 1, launches 3-4 use
 * Account 2, and launches 5-6 use Account 3. The cumulative apparent
 * host count forms a step pattern: a large jump whenever a new account
 * first appears, minimal growth otherwise — different accounts use
 * different base hosts.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "obs/export.hpp"

int
main(int argc, char **argv)
{
    using namespace eaao;

    const obs::ObsConfig obs_cfg = obs::ObsConfig::fromArgs(argc, argv);
    obs::TrialSet obs_set(obs_cfg);
    obs_set.prepare(1);

    std::printf("=== Figure 8 / Experiment 3: launches from three "
                "accounts (us-east1) ===\n\n");

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 81;
    cfg.obs = obs_set.observer(0);
    faas::Platform platform(cfg);

    // Three standard accounts; the platform assigns their home shards
    // (hashed), which here land on three distinct shards.
    const std::vector<faas::AccountId> accounts = {
        platform.createAccount(0),
        platform.createAccount(1),
        platform.createAccount(2),
    };
    std::vector<faas::ServiceId> services;
    for (const auto acct : accounts) {
        services.push_back(
            platform.deployService(acct, faas::ExecEnv::Gen1));
    }

    // Launch schedule: account of launch 1..6.
    const int account_of_launch[6] = {0, 0, 1, 1, 2, 2};

    core::TextTable table;
    table.header({"launch", "account", "apparent hosts", "cumulative"});
    std::set<std::uint64_t> cumulative;
    for (int launch = 0; launch < 6; ++launch) {
        const int a = account_of_launch[launch];
        core::LaunchOptions opts;
        const core::LaunchObservation obs =
            core::launchAndObserve(platform, services[a], opts);
        const auto apparent = obs.apparentHosts();
        cumulative.insert(apparent.begin(), apparent.end());
        table.row({core::format("%d", launch + 1),
                   core::format("%d", a + 1),
                   core::format("%zu", apparent.size()),
                   core::format("%zu", cumulative.size())});
        platform.advance(sim::Duration::minutes(45) - opts.hold);
    }
    table.print();

    std::printf("\npaper shape: cumulative count steps up by roughly "
                "one base-host set\nwhenever a launch introduces a new "
                "account, and is nearly flat otherwise.\n");
    obs::writeOutputs(obs_cfg, obs_set);
    return 0;
}
