/**
 * @file
 * Ablation: the two placement knobs DESIGN.md calls out — the helper
 * chunk size (how aggressively the load balancer spreads a hot
 * service) and the demand-window length — and their effect on the
 * attack surface.
 *
 * Sweeps the knobs on the us-east1 profile and reports the primed
 * footprint, the attacker's fleet occupancy, and victim coverage.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"

namespace {

using namespace eaao;

struct Outcome
{
    std::size_t primed_footprint; //!< hosts after priming one service
    double occupancy;             //!< full campaign, fraction of fleet
    double coverage;              //!< victim coverage
};

Outcome
evaluate(const faas::DataCenterProfile &profile,
         const faas::OrchestratorConfig &orch, std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.orchestrator = orch;
    cfg.seed = seed;
    faas::Platform p(cfg);

    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(1);

    // Primed footprint of a single service.
    const auto probe = p.deployService(attacker, faas::ExecEnv::Gen1);
    core::PrimeOptions prime;
    prime.keep_last_connected = false;
    const auto launches = core::primeService(p, probe, prime);
    std::set<std::uint64_t> footprint;
    for (const auto &obs : launches) {
        const auto hosts = obs.apparentHosts();
        footprint.insert(hosts.begin(), hosts.end());
    }
    p.advance(sim::Duration::minutes(45));

    // Full campaign and coverage.
    const auto attack =
        core::runOptimizedCampaign(p, attacker, core::CampaignConfig{});
    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    const auto vids = p.connect(vsvc, 100);
    const auto cov =
        core::measureCoverageOracle(p, attack.occupied_hosts, vids);

    Outcome out;
    out.primed_footprint = footprint.size();
    out.occupancy = static_cast<double>(attack.occupied_hosts.size()) /
                    static_cast<double>(p.fleet().size());
    out.coverage = cov.coverage();
    return out;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: placement knobs (us-east1) ===\n\n");

    // ---- Helper chunk sweep. ----
    std::printf("-- helper chunk (hosts added per hot launch) --\n");
    core::TextTable chunk_table;
    chunk_table.header({"helper_chunk", "primed footprint", "occupancy",
                        "victim coverage"});
    for (const std::uint32_t chunk : {0u, 15u, 35u, 55u, 90u, 140u}) {
        faas::DataCenterProfile profile =
            faas::DataCenterProfile::usEast1();
        profile.helper_chunk = chunk;
        const Outcome out =
            evaluate(profile, faas::OrchestratorConfig{}, 710 + chunk);
        chunk_table.row({core::format("%u", chunk),
                         core::format("%zu", out.primed_footprint),
                         core::percent(out.occupancy),
                         core::percent(out.coverage)});
    }
    chunk_table.print();
    std::printf("\nchunk 0 disables the load balancer entirely: the "
                "optimized strategy\ndegenerates to the naive one "
                "(base hosts only, low cross-account coverage).\n\n");

    // ---- Demand window sweep. ----
    std::printf("-- demand window (hotness memory) --\n");
    core::TextTable window_table;
    window_table.header({"window (min)", "primed footprint",
                         "occupancy", "victim coverage"});
    for (const int window_min : {5, 15, 30, 60}) {
        faas::OrchestratorConfig orch;
        orch.demand_window = sim::Duration::minutes(window_min);
        const Outcome out = evaluate(faas::DataCenterProfile::usEast1(),
                                     orch, 720 + window_min);
        window_table.row({core::format("%d", window_min),
                          core::format("%zu", out.primed_footprint),
                          core::percent(out.occupancy),
                          core::percent(out.coverage)});
    }
    window_table.print();
    std::printf("\na window shorter than the 10-minute launch interval "
                "never sees the\nprevious burst, so services never "
                "turn hot — footprint and coverage\ncollapse to the "
                "naive baseline. Windows >= the interval behave like "
                "the\npaper's ~30-minute observation.\n");
    return 0;
}
