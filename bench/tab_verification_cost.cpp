/**
 * @file
 * Section 4.3 cost comparison: scalable fingerprint-assisted
 * verification vs conventional pairwise covert-channel testing (and
 * SIE) for 800 concurrent instances.
 *
 * The paper's numbers: pairwise testing needs 319,600 serialized tests
 * (~8.9 h at an optimistic 100 ms/test, ~645 USD of instance time);
 * the Varadarajan-style memory-bus channel at several seconds per test
 * costs far more; the scalable method finishes in ~1-2 minutes for
 * ~1-3 USD. SIE cannot eliminate anything because every FaaS instance
 * shares its host.
 */

#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"

namespace {

constexpr std::uint32_t kInstances = 800;

struct Setup
{
    std::unique_ptr<eaao::faas::Platform> platform;
    eaao::core::LaunchObservation obs;

    explicit Setup(std::uint64_t seed)
    {
        using namespace eaao;
        faas::PlatformConfig cfg;
        cfg.profile = faas::DataCenterProfile::usEast1();
        cfg.seed = seed;
        platform = std::make_unique<faas::Platform>(cfg);
        const auto acct = platform->createAccount();
        const auto svc =
            platform->deployService(acct, faas::ExecEnv::Gen1);
        core::LaunchOptions launch;
        launch.instances = kInstances;
        launch.disconnect_after = false;
        obs = core::launchAndObserve(*platform, svc, launch);
    }
};

} // namespace

int
main()
{
    using namespace eaao;

    std::printf("=== Section 4.3: co-location verification cost for "
                "%u instances (us-east1) ===\n\n", kInstances);

    core::TextTable table;
    table.header({"method", "tests", "wall time", "cost (USD)",
                  "pairwise errors"});

    // --- Scalable fingerprint-assisted verification. ---
    {
        Setup s(431);
        channel::RngChannel chan(*s.platform);
        const core::VerifyResult r = core::verifyScalable(
            *s.platform, chan, s.obs.ids, s.obs.fp_keys,
            s.obs.class_keys);
        std::vector<std::uint64_t> oracle;
        for (const auto id : s.obs.ids)
            oracle.push_back(s.platform->oracleHostOf(id));
        const auto pc = stats::comparePairs(r.cluster_of, oracle);
        table.row({"scalable (ours)",
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    r.group_tests)),
                   r.elapsed.str(), core::format("%.2f", r.cost_usd),
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    pc.fp + pc.fn))});
    }

    // --- Pairwise RNG channel at the paper's optimistic 100 ms/test. ---
    {
        Setup s(432);
        channel::RngChannelConfig quick;
        quick.trials = 6;
        quick.detect_min = 3;
        channel::RngChannel chan(*s.platform, quick);
        const core::VerifyResult r =
            core::verifyPairwise(*s.platform, chan, s.obs.ids);
        std::vector<std::uint64_t> oracle;
        for (const auto id : s.obs.ids)
            oracle.push_back(s.platform->oracleHostOf(id));
        const auto pc = stats::comparePairs(r.cluster_of, oracle);
        table.row({"pairwise, 100 ms/test",
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    r.group_tests)),
                   r.elapsed.str(), core::format("%.0f", r.cost_usd),
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    pc.fp + pc.fn))});
    }

    // --- Pairwise memory-bus channel (Varadarajan-style, 3 s/test). ---
    {
        Setup s(433);
        channel::MemBusChannel chan(*s.platform);
        const core::VerifyResult r =
            core::verifyPairwiseMemBus(*s.platform, chan, s.obs.ids);
        std::vector<std::uint64_t> oracle;
        for (const auto id : s.obs.ids)
            oracle.push_back(s.platform->oracleHostOf(id));
        const auto pc = stats::comparePairs(r.cluster_of, oracle);
        table.row({"pairwise, mem-bus 3 s/test",
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    r.group_tests)),
                   r.elapsed.str(), core::format("%.0f", r.cost_usd),
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    pc.fp + pc.fn))});
    }
    table.print();

    // --- SIE (Inci et al.) is ineffective in FaaS. ---
    {
        Setup s(434);
        channel::RngChannel chan(*s.platform);
        const auto survivors = core::singleInstanceElimination(
            *s.platform, chan, s.obs.ids);
        std::printf("\nSIE filtering: %zu of %u instances survive "
                    "(paper: SIE removes nothing,\nsince the "
                    "orchestrator co-locates instances of the same "
                    "service).\n",
                    survivors.size(), kInstances);
    }

    std::printf("\npaper reference: 319,600 pairwise tests, ~8.9 h, "
                "~645 USD; even more with a\nseconds-long channel; "
                "ours: ~1-2 min, ~1-3 USD, O(#hosts) tests.\n");
    return 0;
}
