/**
 * @file
 * Section 4.3 cost comparison: scalable fingerprint-assisted
 * verification vs conventional pairwise covert-channel testing (and
 * SIE) for 800 concurrent instances.
 *
 * The paper's numbers: pairwise testing needs 319,600 serialized tests
 * (~8.9 h at an optimistic 100 ms/test, ~645 USD of instance time);
 * the Varadarajan-style memory-bus channel at several seconds per test
 * costs far more; the scalable method finishes in ~1-2 minutes for
 * ~1-3 USD. SIE cannot eliminate anything because every FaaS instance
 * shares its host.
 *
 * The four methods are evaluated on four independent platforms; each
 * evaluation is one trial on the parallel harness, and the rows are
 * printed serially in method order so stdout is identical for any
 * --threads value.
 */

#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "exp/trial_runner.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"
#include "support/bench_timer.hpp"
#include "support/options.hpp"

namespace {

constexpr std::uint32_t kInstances = 800;

struct Setup
{
    std::unique_ptr<eaao::faas::Platform> platform;
    eaao::core::LaunchObservation obs;

    explicit Setup(std::uint64_t seed)
    {
        using namespace eaao;
        faas::PlatformConfig cfg;
        cfg.profile = faas::DataCenterProfile::usEast1();
        cfg.seed = seed;
        platform = std::make_unique<faas::Platform>(cfg);
        const auto acct = platform->createAccount();
        const auto svc =
            platform->deployService(acct, faas::ExecEnv::Gen1);
        core::LaunchOptions launch;
        launch.instances = kInstances;
        launch.disconnect_after = false;
        obs = core::launchAndObserve(*platform, svc, launch);
    }
};

/** One evaluated method: a table row, or the SIE survivor count. */
struct MethodResult
{
    std::vector<std::string> row;
    std::size_t sie_survivors = 0;
};

std::vector<std::string>
scoreRow(const char *label, const Setup &s,
         const eaao::core::VerifyResult &r)
{
    using namespace eaao;
    std::vector<std::uint64_t> oracle;
    for (const auto id : s.obs.ids)
        oracle.push_back(s.platform->oracleHostOf(id));
    const auto pc = stats::comparePairs(r.cluster_of, oracle);
    const bool cents = std::string(label) == "scalable (ours)";
    return {label,
            core::format("%llu",
                         static_cast<unsigned long long>(r.group_tests)),
            r.elapsed.str(),
            core::format(cents ? "%.2f" : "%.0f", r.cost_usd),
            core::format("%llu", static_cast<unsigned long long>(
                                     pc.fp + pc.fn))};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eaao;
    const unsigned threads = support::threadsFromArgs(argc, argv);

    std::printf("=== Section 4.3: co-location verification cost for "
                "%u instances (us-east1) ===\n\n", kInstances);

    support::BenchTimer timer("tab_verification_cost", threads,
                              /*seed=*/431);
    const std::vector<MethodResult> methods = exp::runTrials(
        4, /*seed=*/431,
        [&](exp::TrialContext &trial) {
            Setup s(431 + trial.index);
            MethodResult out;
            switch (trial.index) {
            case 0: { // Scalable fingerprint-assisted verification.
                channel::RngChannel chan(*s.platform);
                const core::VerifyResult r = core::verifyScalable(
                    *s.platform, chan, s.obs.ids, s.obs.fp_keys,
                    s.obs.class_keys);
                out.row = scoreRow("scalable (ours)", s, r);
                break;
            }
            case 1: { // Pairwise RNG channel at 100 ms/test.
                channel::RngChannelConfig quick;
                quick.trials = 6;
                quick.detect_min = 3;
                channel::RngChannel chan(*s.platform, quick);
                const core::VerifyResult r =
                    core::verifyPairwise(*s.platform, chan, s.obs.ids);
                out.row = scoreRow("pairwise, 100 ms/test", s, r);
                break;
            }
            case 2: { // Pairwise memory-bus channel (3 s/test).
                channel::MemBusChannel chan(*s.platform);
                const core::VerifyResult r = core::verifyPairwiseMemBus(
                    *s.platform, chan, s.obs.ids);
                out.row = scoreRow("pairwise, mem-bus 3 s/test", s, r);
                break;
            }
            case 3: { // SIE (Inci et al.) is ineffective in FaaS.
                channel::RngChannel chan(*s.platform);
                out.sie_survivors =
                    core::singleInstanceElimination(*s.platform, chan,
                                                    s.obs.ids)
                        .size();
                break;
            }
            }
            return out;
        },
        threads);
    support::maybeWriteBenchJson(argc, argv, timer.stop());

    core::TextTable table;
    table.header({"method", "tests", "wall time", "cost (USD)",
                  "pairwise errors"});
    for (std::size_t i = 0; i < 3; ++i)
        table.row(methods[i].row);
    table.print();

    std::printf("\nSIE filtering: %zu of %u instances survive "
                "(paper: SIE removes nothing,\nsince the "
                "orchestrator co-locates instances of the same "
                "service).\n",
                methods[3].sie_survivors, kInstances);

    std::printf("\npaper reference: 319,600 pairwise tests, ~8.9 h, "
                "~645 USD; even more with a\nseconds-long channel; "
                "ours: ~1-2 min, ~1-3 USD, O(#hosts) tests.\n");
    return 0;
}
