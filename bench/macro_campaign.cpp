/**
 * @file
 * Campaign-scale macro-benchmark over the orchestrator's hot paths.
 *
 * One trial drives a single data center through the three workloads
 * the incremental indexes were built for:
 *
 *  1. a priming phase (repeated large launches with disconnects in
 *     between) that hammers cold/helper placement,
 *  2. a routing storm (tens of thousands of requests against a large
 *     active pool with concurrency > 1) with periodic account-spend
 *     polls, and
 *  3. a verification pass whose uniform fingerprint keys force the
 *     oversized-group recursive-resolution path.
 *
 * `--legacy` re-runs the identical workload with
 * `OrchestratorConfig::reference_scan` set, i.e. on the retained
 * pre-index linear-scan decision paths. Both modes make byte-identical
 * decisions, so stdout is the same either way (and for any `--threads`
 * count); only the `--bench-json` record differs — its bench name is
 * `macro_campaign` or `macro_campaign_legacy`. CI compares the two
 * wall-clock records on the same machine (the speedup gate) and the
 * new-path record against the committed BENCH_BASELINE.json (the
 * workload-drift gate); see tools/compare_benchmarks.py and
 * docs/performance.md.
 *
 * `--sharded` instead drives ONE intra-trial-parallel campaign on the
 * sharded platform (faas::ShardedPlatform, docs/sharding.md): a
 * 100k-host fleet partitioned into 16 lanes, one pinned account per
 * lane, each priming a pool and then absorbing a routing storm —
 * 10M+ requests total by default (`--hosts` / `--requests` resize it,
 * `--prime-rounds` deepens the priming phase). stdout and every total
 * are byte-identical for any `--shards` / `--threads` grouping; CI
 * byte-diffs shards {1,8} x threads {1,8} and gates the grouped wall
 * clock against the single-group record (bench names
 * `macro_campaign_sharded` vs `macro_campaign_sharded_s1`).
 *
 * Checkpoint modes (all imply --sharded; docs/checkpoint.md):
 *
 *  --checkpoint FILE       run the campaign, capture an eaao-snap image
 *                          at the last priming barrier, write it to
 *                          FILE (a `checkpoint: ...` note on stderr),
 *                          and finish normally — stdout is the
 *                          straight-through reference.
 *  --from-checkpoint FILE  restore FILE into a fresh platform and run
 *                          only the storm. stdout is byte-identical to
 *                          the --checkpoint run's for any grouping; a
 *                          truncated/corrupt/newer-format file exits 2
 *                          before anything reaches stdout.
 *  --forked-storms N       prime once, capture in memory, then restore
 *                          + storm N times into ONE reused platform
 *                          (the in-memory fast path; bench name
 *                          `macro_campaign_forked`).
 *  --straight-storms N     run the full campaign N times from scratch
 *                          (bench name `macro_campaign_straight`).
 *
 * --forked-storms and --straight-storms print byte-identical stdout,
 * and CI gates their amortized wall clocks: with priming the dominant
 * cost, N forked storms must be >= 3x faster than N straight runs
 * (tools/compare_benchmarks.py --assert-speedup).
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "channel/covert.hpp"
#include "core/verify.hpp"
#include "exp/trial_runner.hpp"
#include "faas/sharded.hpp"
#include "snap/format.hpp"
#include "snap/snapshotter.hpp"
#include "stats/summary.hpp"
#include "support/bench_timer.hpp"
#include "support/options.hpp"

namespace {

constexpr std::size_t kTrials = 4;
constexpr std::size_t kServices = 4;
constexpr std::uint32_t kLaunchSize = 500;
constexpr std::size_t kPrimeRounds = 3;
constexpr std::uint32_t kStormPool = 700;
constexpr std::uint32_t kMaxConcurrency = 4;
constexpr std::uint64_t kStormRequests = 60000;
constexpr std::uint64_t kSpendPollEvery = 64;
constexpr std::uint32_t kVerifyInstances = 300;

struct TrialMetrics
{
    std::size_t instances_created = 0;
    std::uint64_t requests_routed = 0;
    std::uint64_t spend_polls = 0;
    double spend_poll_sum_usd = 0.0;
    double final_spend_usd = 0.0;
    std::size_t clusters = 0;
    std::uint64_t group_tests = 0;
};

TrialMetrics
runTrial(std::uint64_t seed, bool legacy)
{
    using namespace eaao;

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    cfg.orchestrator.reference_scan = legacy;
    faas::Platform platform(cfg);
    faas::Orchestrator &orch = platform.orchestrator();
    const auto acct = platform.createAccount(0);

    TrialMetrics m;

    // ---- 1. Priming: repeated launches build hotness and exercise
    //         the cold-base and hot-helper placement paths. ----
    std::vector<faas::ServiceId> svcs;
    for (std::size_t s = 0; s < kServices; ++s)
        svcs.push_back(platform.deployService(acct, faas::ExecEnv::Gen1));
    for (std::size_t round = 0; round < kPrimeRounds; ++round) {
        for (const auto svc : svcs) {
            platform.connect(svc, kLaunchSize);
            platform.advance(sim::Duration::minutes(1));
            platform.disconnectAll(svc);
        }
        platform.advance(sim::Duration::minutes(4));
    }

    // ---- 2. Routing storm against a large active pool, with
    //         periodic spend polls. One multi-hour request pins each
    //         pool instance at in_flight >= 1 so none of them idles
    //         out mid-storm: every short request is routed against the
    //         full pool, which is exactly the per-request cost the
    //         routing index removes. ----
    const auto front = svcs.front();
    orch.setMaxConcurrency(front, kMaxConcurrency);
    platform.connect(front, kStormPool);
    for (std::uint32_t p = 0; p < kStormPool; ++p)
        orch.routeRequest(front, sim::Duration::hours(2));
    for (std::uint64_t r = 0; r < kStormRequests; ++r) {
        const double service_s =
            0.05 + 0.01 * static_cast<double>(r % 7);
        orch.routeRequest(front, sim::Duration::fromSecondsF(service_s));
        ++m.requests_routed;
        if (r % kSpendPollEvery == 0) {
            m.spend_poll_sum_usd += platform.accountSpendUsd(acct);
            ++m.spend_polls;
        }
        if (r % 16 == 15)
            platform.advance(sim::Duration::fromSecondsF(0.02));
    }
    platform.advance(sim::Duration::minutes(1));

    // ---- 3. Verification with uniform fingerprint keys: the whole
    //         set lands in one oversized group, driving the recursive
    //         resolution (arena) path end to end. ----
    const auto held = platform.connect(svcs[1], kVerifyInstances);
    const std::vector<std::uint64_t> fp_keys(held.size(), 7);
    channel::RngChannel chan(platform);
    const core::VerifyResult verdict =
        core::verifyScalable(platform, chan, held, fp_keys, {});
    m.clusters = verdict.clusterCount();
    m.group_tests = verdict.group_tests;

    m.instances_created = orch.instanceCount();
    m.final_spend_usd = platform.accountSpendUsd(acct);
    return m;
}

// ---- Sharded campaign (--sharded) ----

constexpr std::uint32_t kShardedHosts = 100'000;
constexpr std::uint64_t kShardedRequests = 10'400'000;
constexpr std::uint32_t kShardedPool = 650;
constexpr std::uint32_t kShardedPrimeRounds = 2;
constexpr std::uint32_t kShardedPrimeLaunch = 300;

/**
 * One lane's script: prime a service hot, pin a concurrency-4 pool
 * with multi-hour requests, then run the storm as a single RouteStorm
 * op (requests are generated inside the window loop, so 10M+ of them
 * never materialize as individual ops). @p prime_traffic > 0 adds a
 * keep-warm burst of that many requests after each priming round's
 * disconnect — they reuse the just-launched warm instances, so they
 * cost priming CPU without minting new instance records.
 */
void
laneScript(std::vector<eaao::faas::ShardOp> &ops,
           eaao::faas::ServiceId svc, std::uint64_t storm_requests,
           std::uint32_t prime_rounds, std::uint64_t prime_traffic)
{
    using namespace eaao;
    using Kind = faas::ShardOp::Kind;

    sim::SimTime t;
    std::uint32_t step = 0;
    const auto push = [&](Kind kind) -> faas::ShardOp & {
        faas::ShardOp op;
        op.kind = kind;
        op.at = t;
        op.step = step++;
        op.service = svc;
        ops.push_back(op);
        return ops.back();
    };

    for (std::uint32_t round = 0; round < prime_rounds; ++round) {
        push(Kind::Connect).a = kShardedPrimeLaunch;
        t = t + sim::Duration::minutes(1);
        push(Kind::Disconnect);
        if (prime_traffic > 0) {
            faas::ShardOp &warm = push(Kind::RouteStorm);
            warm.n = prime_traffic;
            warm.dur = sim::Duration::fromSecondsF(0.05);
            warm.dur_step = sim::Duration::fromSecondsF(0.01);
            warm.dur_mod = 7;
            warm.gap_every = 16;
            warm.gap = sim::Duration::fromSecondsF(0.02);
        }
        t = t + sim::Duration::minutes(4);
    }

    push(Kind::SetConcurrency).a = kMaxConcurrency;
    push(Kind::Connect).a = kShardedPool;
    for (std::uint32_t p = 0; p < kShardedPool; ++p) {
        faas::ShardOp &pin = push(Kind::Route);
        pin.sub = p;
        pin.dur = sim::Duration::hours(2);
    }

    faas::ShardOp &storm = push(Kind::RouteStorm);
    storm.n = storm_requests;
    storm.dur = sim::Duration::fromSecondsF(0.05);
    storm.dur_step = sim::Duration::fromSecondsF(0.01);
    storm.dur_mod = 7;
    storm.gap_every = 16;
    storm.gap = sim::Duration::fromSecondsF(0.02);
    storm.spend_every = kSpendPollEvery;
}

/** Flags of the --sharded family (campaign shape + checkpoint modes). */
struct ShardedArgs
{
    unsigned threads = 1;
    std::uint32_t shards = 1;
    std::uint32_t hosts = kShardedHosts;
    std::uint64_t requests = kShardedRequests;
    std::uint32_t prime_rounds = kShardedPrimeRounds;
    std::uint64_t prime_traffic = 0;
    std::uint64_t forked_storms = 0;
    std::uint64_t straight_storms = 0;
    const char *checkpoint = nullptr;
    const char *from_checkpoint = nullptr;
};

eaao::faas::ShardedConfig
shardedConfig(const ShardedArgs &a)
{
    using namespace eaao;
    faas::ShardedConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = a.hosts;
    cfg.seed = 4242;
    cfg.shards = a.shards;
    cfg.threads = a.threads;
    return cfg;
}

/** Create the per-lane accounts/services and assemble their scripts. */
std::vector<eaao::faas::ShardOp>
buildCampaign(eaao::faas::ShardedPlatform &platform, const ShardedArgs &a,
              eaao::sim::SimTime &horizon)
{
    using namespace eaao;
    const std::uint32_t lanes = platform.laneCount();
    const std::uint64_t per_lane = a.requests / lanes;
    std::vector<faas::ShardOp> ops;
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
        const auto acct = platform.createAccount(lane);
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        laneScript(ops, svc, per_lane, a.prime_rounds, a.prime_traffic);
        horizon = ops.back().at +
                  sim::Duration::fromSecondsF(0.02) *
                      static_cast<std::int64_t>(per_lane / 16) +
                  sim::Duration::minutes(10);
    }
    return ops;
}

eaao::faas::ShardedTotals
runStraight(const ShardedArgs &a)
{
    using namespace eaao;
    faas::ShardedPlatform platform(shardedConfig(a));
    sim::SimTime horizon;
    std::vector<faas::ShardOp> ops = buildCampaign(platform, a, horizon);
    platform.run(std::move(ops), horizon);
    return platform.totals();
}

/**
 * Barrier index of the checkpoint: the last window of the priming
 * phase. Every lane's storm ops sit at prime_rounds * 5 minutes, so
 * capturing (pre-fold; docs/checkpoint.md) at the barrier just before
 * means a restored run re-executes only the storm.
 */
std::uint32_t
captureWindow(const ShardedArgs &a, const eaao::faas::ShardedConfig &cfg)
{
    const std::int64_t prime_ns = eaao::sim::Duration::minutes(5).ns() *
                                  static_cast<std::int64_t>(a.prime_rounds);
    const std::int64_t w = prime_ns / cfg.window.ns();
    return w > 1 ? static_cast<std::uint32_t>(w - 1) : 0;
}

/**
 * Run the campaign with a snapshot captured at the priming barrier.
 * When @p finish is true the run continues to completion (stdout
 * parity with runStraight) and @p totals is filled in; otherwise the
 * platform is abandoned at the capture point — the forks redo the
 * storm from the returned image.
 */
std::vector<std::uint8_t>
primeAndCapture(const ShardedArgs &a, bool finish,
                eaao::faas::ShardedTotals *totals)
{
    using namespace eaao;
    const faas::ShardedConfig cfg = shardedConfig(a);
    faas::ShardedPlatform platform(cfg);
    sim::SimTime horizon;
    std::vector<faas::ShardOp> ops = buildCampaign(platform, a, horizon);
    const std::uint32_t capture_at = captureWindow(a, cfg);
    std::vector<std::uint8_t> image;
    platform.beginRun(std::move(ops), horizon);
    std::uint32_t window = 0;
    while (platform.running()) {
        platform.advanceWindow();
        if (image.empty() && window >= capture_at) {
            image = snap::Snapshotter::capture(platform);
            if (!finish)
                return image;
        }
        platform.completeWindow();
        ++window;
    }
    if (image.empty()) {
        std::fprintf(stderr,
                     "macro_campaign: run finished before the capture "
                     "barrier (window %u); raise --prime-rounds\n",
                     capture_at);
        std::exit(2);
    }
    if (totals != nullptr)
        *totals = platform.totals();
    return image;
}

// stdout of every sharded mode is built from these two blocks only, so
// --checkpoint, --from-checkpoint and the plain run byte-match for any
// grouping, and --forked-storms N byte-matches --straight-storms N.
void
printShardedHeader(const ShardedArgs &a)
{
    std::printf("=== macro_campaign --sharded: window-barrier lanes "
                "(us-east1, %u hosts, %llu requests) ===\n\n",
                a.hosts, static_cast<unsigned long long>(a.requests));
}

void
printTotals(const eaao::faas::ShardedTotals &t)
{
    std::printf("routed %llu requests across %u windows; created %llu "
                "instances\n",
                static_cast<unsigned long long>(t.routed), t.windows,
                static_cast<unsigned long long>(t.instances));
    std::printf("spend checksum %.2f USD; final spend %.2f USD\n",
                t.spend_checksum, t.final_spend_usd);
    std::printf("events scheduled=%llu processed=%llu cancelled=%llu "
                "pending=%llu\n",
                static_cast<unsigned long long>(t.events_scheduled),
                static_cast<unsigned long long>(t.events_processed),
                static_cast<unsigned long long>(t.events_cancelled),
                static_cast<unsigned long long>(t.events_pending));
}

int
checkpointMain(const ShardedArgs &a, int argc, char **argv)
{
    using namespace eaao;
    support::BenchTimer timer("macro_campaign_checkpoint", a.threads,
                              /*seed=*/4242);
    faas::ShardedTotals t;
    const std::vector<std::uint8_t> image =
        primeAndCapture(a, /*finish=*/true, &t);
    std::string error;
    if (!snap::Snapshotter::writeFile(a.checkpoint, image, error)) {
        std::fprintf(stderr, "macro_campaign: %s\n", error.c_str());
        return 2;
    }
    support::maybeWriteBenchJson(argc, argv, timer.stop());
    std::fprintf(stderr, "checkpoint: %zu bytes at window %u -> %s\n",
                 image.size(), captureWindow(a, shardedConfig(a)),
                 a.checkpoint);
    printShardedHeader(a);
    printTotals(t);
    return 0;
}

int
fromCheckpointMain(const ShardedArgs &a, int argc, char **argv)
{
    using namespace eaao;
    std::vector<std::uint8_t> image;
    std::string error;
    if (!snap::Snapshotter::readFile(a.from_checkpoint, image, error)) {
        std::fprintf(stderr, "macro_campaign: %s\n", error.c_str());
        return 2;
    }
    support::BenchTimer timer("macro_campaign_from_checkpoint", a.threads,
                              /*seed=*/4242);
    faas::ShardedTotals t;
    {
        faas::ShardedPlatform platform(shardedConfig(a));
        if (!snap::Snapshotter::restore(image, platform, error)) {
            std::fprintf(stderr, "macro_campaign: %s\n", error.c_str());
            return 2;
        }
        platform.resumeRun();
        t = platform.totals();
    }
    support::maybeWriteBenchJson(argc, argv, timer.stop());
    printShardedHeader(a);
    printTotals(t);
    return 0;
}

int
forkedMain(const ShardedArgs &a, int argc, char **argv)
{
    using namespace eaao;
    std::vector<faas::ShardedTotals> runs;
    support::BenchTimer timer("macro_campaign_forked", a.threads,
                              /*seed=*/4242);
    {
        const std::vector<std::uint8_t> image =
            primeAndCapture(a, /*finish=*/false, nullptr);
        // One platform absorbs every fork: restore() replaces its state
        // wholesale, so re-restoring into the just-finished platform is
        // the in-memory fast path (no per-fork construction).
        faas::ShardedPlatform platform(shardedConfig(a));
        std::string error;
        // Validate (and checksum) the image once; every fork restores
        // from the parsed reader.
        snap::SnapshotReader reader;
        if (!reader.parse(image, error, a.threads)) {
            std::fprintf(stderr, "macro_campaign: %s\n", error.c_str());
            return 2;
        }
        for (std::uint64_t i = 0; i < a.forked_storms; ++i) {
            if (!snap::Snapshotter::restore(reader, platform, error)) {
                std::fprintf(stderr, "macro_campaign: %s\n", error.c_str());
                return 2;
            }
            platform.resumeRun();
            runs.push_back(platform.totals());
        }
    }
    support::maybeWriteBenchJson(argc, argv, timer.stop());
    printShardedHeader(a);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        std::printf("storm %zu:\n", i);
        printTotals(runs[i]);
    }
    return 0;
}

int
straightMain(const ShardedArgs &a, int argc, char **argv)
{
    using namespace eaao;
    std::vector<faas::ShardedTotals> runs;
    support::BenchTimer timer("macro_campaign_straight", a.threads,
                              /*seed=*/4242);
    for (std::uint64_t i = 0; i < a.straight_storms; ++i)
        runs.push_back(runStraight(a));
    support::maybeWriteBenchJson(argc, argv, timer.stop());
    printShardedHeader(a);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        std::printf("storm %zu:\n", i);
        printTotals(runs[i]);
    }
    return 0;
}

/**
 * `--open-loop`: the arrival-storm kernel duel (docs/load-engine.md).
 *
 * Sixteen independent open-loop Poisson streams (2500 rps each) have
 * their instants materialized a window at a time — the barrier-clamped
 * generation pattern, pumped stream-at-a-time exactly as the loadgen
 * program pumps its lanes — so the kernel holds a full window of
 * pending arrivals (~2.4M at the default rate) and, crucially, sees
 * each lane's burst land in the MIDDLE of the pending set: only the
 * first lane's pushes arrive in globally sorted order. Each arrival
 * fires a completion ~50-250 ms out plus a 30 s timeout guard the
 * completion cancels — the reap pattern the kernel documents as its
 * dominant workload. A cancelled guard costs the heap kernel a full
 * depth-of-millions sift-down when its stale entry surfaces; the wheel
 * kernel drops it at bucket-dump time without touching the heap. The
 * identical storm runs on the wheel-backed kernel and on the pure-heap kernel
 * (`use_wheel = false`); both must agree on every count (the wheel
 * never reorders pops), stdout prints one digest, and the two
 * `--bench-json` records (`wheel_arrivals` / `heap_arrivals`) feed
 * CI's same-machine >= 2x speedup gate.
 */
int
openLoopMain(int argc, char **argv)
{
    using namespace eaao;
    std::uint64_t requests = 4'000'000;
    for (int i = 1; i < argc - 1; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0)
            requests = std::strtoull(argv[i + 1], nullptr, 10);
    }
    constexpr std::size_t kStreams = 16;
    const double rate_rps = 40000.0;
    const sim::Duration window = sim::Duration::seconds(120);

    faas::ArrivalSpec spec;
    spec.kind = faas::ArrivalKind::Poisson;
    spec.rate_rps = rate_rps / static_cast<double>(kStreams);
    spec.span = sim::Duration::fromSecondsF(
        static_cast<double>(requests) / rate_rps);
    spec.mean_service_time = sim::Duration::millis(100);
    std::vector<std::vector<sim::SimTime>> lanes(kStreams);
    std::size_t arrivals = 0;
    for (std::size_t s = 0; s < kStreams; ++s) {
        faas::ArrivalCursor cursor(spec, sim::Rng(4242).fork(s),
                                   sim::SimTime());
        cursor.generateUntil(sim::SimTime() + spec.span, lanes[s]);
        arrivals += lanes[s].size();
    }

    struct Digest
    {
        std::uint64_t fired = 0;
        std::uint64_t timeouts = 0;
        std::uint64_t processed = 0;
        std::uint64_t cancelled = 0;
        std::int64_t end_ns = 0;
    };
    const auto runArm = [&](bool use_wheel) {
        Digest d;
        sim::EventQueue eq(sim::SimTime(), use_wheel);
        eq.reserve(arrivals + arrivals / 2);
        std::array<std::size_t, kStreams> next{};
        sim::SimTime stop;
        bool more = true;
        while (more) {
            more = false;
            stop = stop + window;
            for (std::size_t s = 0; s < kStreams; ++s) {
                const auto &lane = lanes[s];
                std::size_t &n = next[s];
                for (; n < lane.size() && lane[n] < stop; ++n) {
                    const auto complete = sim::Duration::millis(
                        50 + static_cast<int>(
                                 sim::mix64((s << 32 | n) ^ 0x51ab) %
                                 200));
                    eq.scheduleAt(
                        lane[n], [&eq, &d, complete] {
                            const sim::EventId guard = eq.scheduleAfter(
                                sim::Duration::seconds(30),
                                [&d] { ++d.timeouts; });
                            eq.scheduleAfter(complete,
                                             [&eq, &d, guard] {
                                                 eq.cancel(guard);
                                                 ++d.fired;
                                             });
                        });
                }
                more = more || n < lane.size();
            }
            eq.runUntil(stop);
        }
        eq.run();
        d.processed = eq.processed();
        d.cancelled = eq.cancelled();
        d.end_ns = eq.now().ns();
        return d;
    };

    // Two interleaved repetitions per arm, heap first: the gate
    // (tools/compare_benchmarks.py --assert-speedup) takes the median
    // per bench name, so a noisy neighbor or cold-start hiccup in any
    // single storm cannot flip the verdict.
    constexpr int kReps = 2;
    Digest wheel;
    Digest heap;
    for (int rep = 0; rep < kReps; ++rep) {
        support::BenchTimer heap_timer("heap_arrivals", 1, /*seed=*/4242);
        heap = runArm(/*use_wheel=*/false);
        support::maybeWriteBenchJson(argc, argv, heap_timer.stop());

        support::BenchTimer wheel_timer("wheel_arrivals", 1,
                                        /*seed=*/4242);
        wheel = runArm(/*use_wheel=*/true);
        support::maybeWriteBenchJson(argc, argv, wheel_timer.stop());

        if (wheel.fired != heap.fired ||
            wheel.timeouts != heap.timeouts ||
            wheel.processed != heap.processed ||
            wheel.cancelled != heap.cancelled ||
            wheel.end_ns != heap.end_ns)
            break;
    }

    if (wheel.fired != heap.fired || wheel.timeouts != heap.timeouts ||
        wheel.processed != heap.processed ||
        wheel.cancelled != heap.cancelled ||
        wheel.end_ns != heap.end_ns) {
        std::fprintf(stderr,
                     "fatal: wheel and heap kernels diverged "
                     "(fired %llu/%llu, processed %llu/%llu)\n",
                     static_cast<unsigned long long>(wheel.fired),
                     static_cast<unsigned long long>(heap.fired),
                     static_cast<unsigned long long>(wheel.processed),
                     static_cast<unsigned long long>(heap.processed));
        return 1;
    }
    std::printf("=== macro_campaign: open-loop arrival storm "
                "(wheel vs heap kernel) ===\n\n");
    std::printf("arrivals %zu (%zu poisson streams, %.0f rps total, "
                "%.0f s span); completions %llu;\ntimeout guards "
                "cancelled %llu, expired %llu; events processed %llu; "
                "final\nvirtual time %.3f s; kernels agree\n",
                arrivals, kStreams, rate_rps,
                static_cast<double>(spec.span.ns()) / 1e9,
                static_cast<unsigned long long>(wheel.fired),
                static_cast<unsigned long long>(wheel.cancelled),
                static_cast<unsigned long long>(wheel.timeouts),
                static_cast<unsigned long long>(wheel.processed),
                static_cast<double>(wheel.end_ns) / 1e9);
    return 0;
}

int
shardedMain(int argc, char **argv)
{
    using namespace eaao;
    ShardedArgs a;
    a.threads = support::threadsFromArgs(argc, argv);
    for (int i = 1; i < argc - 1; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0)
            a.shards = static_cast<std::uint32_t>(
                std::strtoul(argv[i + 1], nullptr, 10));
        else if (std::strcmp(argv[i], "--hosts") == 0)
            a.hosts = static_cast<std::uint32_t>(
                std::strtoul(argv[i + 1], nullptr, 10));
        else if (std::strcmp(argv[i], "--requests") == 0)
            a.requests = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--prime-rounds") == 0)
            a.prime_rounds = static_cast<std::uint32_t>(
                std::strtoul(argv[i + 1], nullptr, 10));
        else if (std::strcmp(argv[i], "--prime-traffic") == 0)
            a.prime_traffic = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--forked-storms") == 0)
            a.forked_storms = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--straight-storms") == 0)
            a.straight_storms = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--checkpoint") == 0)
            a.checkpoint = argv[i + 1];
        else if (std::strcmp(argv[i], "--from-checkpoint") == 0)
            a.from_checkpoint = argv[i + 1];
    }
    if (a.shards == 0)
        a.shards = 1;
    if (a.prime_rounds == 0)
        a.prime_rounds = 1;

    if (a.from_checkpoint != nullptr)
        return fromCheckpointMain(a, argc, argv);
    if (a.checkpoint != nullptr)
        return checkpointMain(a, argc, argv);
    if (a.forked_storms != 0)
        return forkedMain(a, argc, argv);
    if (a.straight_storms != 0)
        return straightMain(a, argc, argv);

    // stdout depends only on (hosts, requests, prime-rounds): the
    // sharded platform's totals are grouping-invariant, so any
    // --shards/--threads pair byte-matches — the property CI's
    // determinism matrix diffs.
    printShardedHeader(a);

    support::BenchTimer timer(a.shards > 1 ? "macro_campaign_sharded"
                                           : "macro_campaign_sharded_s1",
                              a.threads, /*seed=*/4242);
    const faas::ShardedTotals t = runStraight(a);
    support::maybeWriteBenchJson(argc, argv, timer.stop());

    printTotals(t);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eaao;
    bool legacy = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sharded") == 0)
            return shardedMain(argc, argv);
        if (std::strcmp(argv[i], "--open-loop") == 0)
            return openLoopMain(argc, argv);
        if (std::strcmp(argv[i], "--legacy") == 0)
            legacy = true;
    }
    const unsigned threads = support::threadsFromArgs(argc, argv);

    std::printf("=== macro_campaign: placement/routing/verification "
                "hot paths (us-east1, %zu trials) ===\n\n",
                kTrials);

    support::BenchTimer timer(
        legacy ? "macro_campaign_legacy" : "macro_campaign", threads,
        /*seed=*/4242);
    const std::vector<TrialMetrics> trials = exp::runTrials(
        kTrials, /*seed=*/4242,
        [legacy](exp::TrialContext &trial) {
            return runTrial(4242 + trial.index, legacy);
        },
        threads);
    support::maybeWriteBenchJson(argc, argv, timer.stop());

    const TrialMetrics &t = trials.front();
    std::printf("trial 0: created %zu instances; routed %llu requests "
                "(%llu spend polls,\nchecksum %.2f USD); final spend "
                "%.2f USD\n",
                t.instances_created,
                static_cast<unsigned long long>(t.requests_routed),
                static_cast<unsigned long long>(t.spend_polls),
                t.spend_poll_sum_usd, t.final_spend_usd);
    std::printf("trial 0: verified %u uniform-fingerprint instances "
                "into %zu clusters\n(%llu group tests)\n\n",
                kVerifyInstances, t.clusters,
                static_cast<unsigned long long>(t.group_tests));

    stats::OnlineStats created, spend, clusters, tests;
    for (const TrialMetrics &r : trials) {
        created.add(static_cast<double>(r.instances_created));
        spend.add(r.final_spend_usd);
        clusters.add(static_cast<double>(r.clusters));
        tests.add(static_cast<double>(r.group_tests));
    }
    std::printf("across %zu trials: instances %.1f (sd %.1f), spend "
                "%.2f USD (sd %.2f),\nclusters %.1f (sd %.1f), group "
                "tests %.1f (sd %.1f)\n",
                kTrials, created.mean(), created.stddev(), spend.mean(),
                spend.stddev(), clusters.mean(), clusters.stddev(),
                tests.mean(), tests.stddev());
    return 0;
}
