/**
 * @file
 * Section 5.2, "Potential attack optimizations": occupying more hosts
 * with more accounts and more services — and the quota wall that makes
 * it expensive.
 *
 * The attacker adds accounts (each with its own base shard and helper
 * draws) and services per account. Established accounts scale to 800
 * instances per service; fresh accounts are quota-capped (10
 * concurrent instances per service) until they build usage history,
 * which the paper identifies as the bottleneck of this optimization.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "core/report.hpp"
#include "support/logging.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"

namespace {

using namespace eaao;

/** Occupied-host fraction for a fleet of attacker accounts. */
double
occupancyWithAccounts(std::uint32_t accounts,
                      std::uint32_t services_per_account,
                      std::uint32_t quota, std::uint64_t seed,
                      double &cost_usd)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    faas::Platform p(cfg);

    std::set<hw::HostId> occupied;
    cost_usd = 0.0;
    for (std::uint32_t a = 0; a < accounts; ++a) {
        const auto acct = p.createAccount(
            a % p.fleet().shardCount(), quota);
        core::CampaignConfig campaign;
        campaign.services = services_per_account;
        campaign.prime.launch.instances = 800; // clamped by the quota
        const auto result =
            core::runOptimizedCampaign(p, acct, campaign);
        occupied.insert(result.occupied_hosts.begin(),
                        result.occupied_hosts.end());
        cost_usd += result.cost_usd;
    }
    return static_cast<double>(occupied.size()) /
           static_cast<double>(p.fleet().size());
}

} // namespace

int
main()
{
    // Quota clamps are expected here; silence the per-launch warnings.
    eaao::setLogLevel(eaao::LogLevel::Silent);
    std::printf("=== Section 5.2: scaling the attack with more "
                "accounts/services (us-east1) ===\n\n");

    core::TextTable table;
    table.header({"accounts", "services/acct", "quota", "occupancy",
                  "cost (USD)"});

    struct Point
    {
        std::uint32_t accounts, services, quota;
    };
    const std::vector<Point> sweep = {
        {1, 3, 1000}, {1, 6, 1000}, {2, 6, 1000}, {3, 6, 1000},
        {3, 8, 1000},
        // fresh accounts: the 10-instance quota wall
        {3, 6, 10},
    };

    for (const Point &point : sweep) {
        double cost = 0.0;
        const double occ = occupancyWithAccounts(
            point.accounts, point.services, point.quota,
            5270 + point.accounts * 13 + point.services, cost);
        table.row({core::format("%u", point.accounts),
                   core::format("%u", point.services),
                   core::format("%u", point.quota),
                   core::percent(occ),
                   core::format("%.1f", cost)});
    }
    table.print();

    std::printf("\npaper shape: more accounts and services expand the "
                "helper-host union\n(as in the Fig. 12 exploration), "
                "but new accounts are quota-capped to ~10\ninstances "
                "per service, so scaling requires aged accounts — "
                "extra time and\nfinancial cost.\n");
    return 0;
}
