/**
 * @file
 * The one generic campaign driver: executes any
 * `eaao-scenario v2` campaign file (bench/campaigns/*.scenario) or a
 * bare v1 replay, replacing the per-figure bench binaries.
 *
 *   run_campaign FILE [--threads N] [--bench-json F] [--trace-json F]
 *                     [--metrics-json F]
 *   run_campaign --list [DIR]       # summarize a campaign directory
 *   run_campaign --describe FILE    # pretty-print resolved sections
 *
 * A malformed file prints one line-precise diagnostic to stderr and
 * exits 2 (docs/scenario-dsl.md documents the message catalog);
 * stdout of a ported campaign is byte-identical to its legacy binary
 * (CI's campaign-parity job diffs against bench/campaigns/expected/).
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "campaign/specfile.hpp"
#include "core/report.hpp"
#include "testkit/scenario.hpp"

namespace {

using namespace eaao;

int
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: run_campaign FILE [--threads N] [--shards N]\n"
        "                         [--bench-json F] [--trace-json F]\n"
        "                         [--metrics-json F]\n"
        "       run_campaign --list [DIR]\n"
        "       run_campaign --describe FILE\n");
    return to == stdout ? 0 : 2;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw campaign::SpecError(path + ":1: cannot open file");
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/**
 * Load @p path as a campaign: a v2 file directly; a v1 replay is
 * auto-wrapped by round-tripping it through testkit's Scenario (whose
 * serialize() emits the v2 `replay` campaign).
 */
campaign::CampaignSpec
loadCampaign(const std::string &path)
{
    const std::string text = readFile(path);
    if (campaign::looksLikeV1(text)) {
        testkit::Scenario scenario;
        std::string error;
        if (!testkit::Scenario::parse(text, scenario, error))
            throw campaign::SpecError(path + ": " + error);
        return campaign::CampaignSpec::parse(scenario.serialize(), path);
    }
    return campaign::CampaignSpec::parse(text, path);
}

int
listCampaigns(const std::string &dir)
{
    namespace fs = std::filesystem;
    if (!fs::is_directory(dir)) {
        std::fprintf(stderr, "run_campaign: not a directory: %s\n",
                     dir.c_str());
        return 2;
    }
    std::vector<std::string> paths;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".scenario")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());

    core::TextTable table;
    table.header({"campaign", "program", "title"});
    for (const std::string &path : paths) {
        try {
            const campaign::CampaignSpec spec = loadCampaign(path);
            table.row({spec.name(), spec.program(), spec.title()});
        } catch (const campaign::SpecError &e) {
            table.row({fs::path(path).stem().string(), "(error)",
                       e.what()});
        }
    }
    table.print();
    std::printf("\n%zu campaign file%s in %s\n", paths.size(),
                paths.size() == 1 ? "" : "s", dir.c_str());
    return 0;
}

int
describeCampaign(const std::string &path)
{
    const campaign::CampaignSpec spec = loadCampaign(path);
    std::printf("campaign %s  (program: %s)\n", spec.name().c_str(),
                spec.program().c_str());
    if (!spec.title().empty())
        std::printf("title    %s\n", spec.title().c_str());
    std::printf("\n%s", spec.file().render().c_str());

    const std::vector<campaign::Trigger> triggers = spec.triggers();
    if (!triggers.empty()) {
        std::printf("\nresolved triggers\n");
        std::vector<std::string> counters;
        for (const campaign::Trigger &t : triggers) {
            std::printf("  %s: %s -> \"%s\"\n", t.name.c_str(),
                        campaign::renderExpr(*t.condition).c_str(),
                        t.message.c_str());
            for (std::string &name : campaign::counterNames(*t.condition))
                counters.push_back(std::move(name));
        }
        std::sort(counters.begin(), counters.end());
        counters.erase(std::unique(counters.begin(), counters.end()),
                       counters.end());
        // The sampling contract: the campaign's program must record
        // each of these for the conditions to ever fire.
        std::printf("\ntrigger counters\n");
        for (const std::string &name : counters)
            std::printf("  %s\n", name.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string file;
    bool list = false;
    bool describe = false;
    std::string list_dir = "bench/campaigns";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--list") {
            list = true;
        } else if (arg == "--describe") {
            describe = true;
        } else if (arg == "--threads" || arg == "--shards" ||
                   arg == "--bench-json" || arg == "--trace-json" ||
                   arg == "--metrics-json") {
            ++i; // value consumed by the support:: helpers
        } else if (arg.rfind("--", 0) == 0 &&
                   arg.find('=') != std::string::npos) {
            // --threads=N style; also handled by the support helpers
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "run_campaign: unknown flag %s\n",
                         arg.c_str());
            return usage(stderr);
        } else {
            file = arg;
        }
    }

    try {
        if (list)
            return listCampaigns(file.empty() ? list_dir : file);
        if (file.empty())
            return usage(stderr);
        if (describe)
            return describeCampaign(file);
        return campaign::runCampaign(loadCampaign(file), argc, argv);
    } catch (const campaign::SpecError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
