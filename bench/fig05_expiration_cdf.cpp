/**
 * @file
 * Figure 5: CDF of the estimated Gen 1 fingerprint expiration time.
 *
 * Protocol (paper Section 4.4.2): launch 50 long-running instances per
 * data center, record their hosts' fingerprints hourly for one week,
 * and treat an instance restart as a new (unknown) host. Histories
 * shorter than 24 hours are filtered out. Each history's T_boot drift
 * is fitted with linear regression (reporting the r-value) and the
 * expiration time is the predicted time to cross a rounding boundary
 * at p_boot = 1 s.
 */

#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/tracker.hpp"
#include "faas/platform.hpp"
#include "sim/rng.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"

namespace {

constexpr int kInstances = 50;
constexpr int kHours = 7 * 24;
constexpr double kRestartProbPerHour = 0.009;
constexpr double kPBoot = 1.0;

struct DcResult
{
    std::string name;
    std::size_t histories = 0;
    double min_abs_r = 1.0;
    std::vector<double> expiration_days;
};

DcResult
runDataCenter(const eaao::faas::DataCenterProfile &profile,
              std::uint64_t seed)
{
    using namespace eaao;
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.seed = seed;
    faas::Platform platform(cfg);
    sim::Rng churn(seed * 977 + 5);

    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);

    // Launch a full base-host load and keep one long-running probe per
    // distinct host, so the histories cover ~75 hosts rather than the
    // handful a 50-instance launch would occupy.
    std::vector<faas::InstanceId> ids;
    {
        const auto all = platform.connect(svc, 800);
        std::set<hw::HostId> hosts;
        for (const auto id : all) {
            if (hosts.insert(platform.oracleHostOf(id)).second)
                ids.push_back(id);
        }
        if (ids.size() > kInstances)
            ids.resize(kInstances);
    }

    // One open history per tracked slot; restarts close it and open a
    // fresh one.
    std::vector<core::FingerprintHistory> open(ids.size());
    std::vector<core::FingerprintHistory> closed;

    for (int hour = 0; hour <= kHours; ++hour) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (hour > 0 && churn.bernoulli(kRestartProbPerHour)) {
                // The platform terminated and replaced this instance;
                // conservatively treat the replacement as a new host.
                closed.push_back(std::move(open[i]));
                open[i] = core::FingerprintHistory();
                ids[i] = platform.restartInstance(ids[i]);
            }
            faas::SandboxView sbx = platform.sandbox(ids[i]);
            const core::Gen1Reading r = core::readGen1Median(sbx, 15);
            open[i].add(platform.now(), r.tboot_s);
        }
        platform.advance(sim::Duration::hours(1));
    }
    for (auto &history : open)
        closed.push_back(std::move(history));

    DcResult result;
    result.name = profile.name;
    for (const auto &history : closed) {
        if (history.span() < sim::Duration::hours(24))
            continue;
        ++result.histories;
        const stats::LinearFit fit = history.fitDrift();
        result.min_abs_r =
            std::min(result.min_abs_r, std::fabs(fit.r_value));
        const auto exp_s = history.expirationSeconds(kPBoot);
        // A host whose drift is immeasurably small effectively never
        // expires within the horizon; clamp for the CDF tail.
        result.expiration_days.push_back(
            exp_s ? *exp_s / 86400.0 : 1e6);
    }
    return result;
}

} // namespace

int
main()
{
    using namespace eaao;

    std::printf("=== Figure 5: CDF of estimated fingerprint expiration "
                "time (p_boot = 1 s) ===\n\n");

    const std::vector<faas::DataCenterProfile> dcs = {
        faas::DataCenterProfile::usEast1(),
        faas::DataCenterProfile::usCentral1(),
        faas::DataCenterProfile::usWest1(),
    };

    std::vector<DcResult> results;
    for (std::size_t d = 0; d < dcs.size(); ++d)
        results.push_back(runDataCenter(dcs[d], 2100 + d));

    core::TextTable table;
    table.header({"days", results[0].name, results[1].name,
                  results[2].name});
    for (int day = 0; day <= 7; ++day) {
        std::vector<std::string> row = {core::format("%d", day)};
        for (const auto &result : results) {
            const stats::EmpiricalCdf cdf(result.expiration_days);
            row.push_back(core::format("%.3f",
                                       cdf.at(static_cast<double>(day))));
        }
        table.row(row);
    }
    table.print();

    std::printf("\n");
    core::TextTable meta;
    meta.header({"data center", "histories(>=24h)", "min |r|",
                 "t(10%% expired)"});
    double mean_p10 = 0.0;
    for (const auto &result : results) {
        const stats::EmpiricalCdf cdf(result.expiration_days);
        const double p10 = cdf.quantile(0.10);
        mean_p10 += p10 / static_cast<double>(results.size());
        meta.row({result.name, core::format("%zu", result.histories),
                  core::format("%.5f", result.min_abs_r),
                  core::format("%.2f d", p10)});
    }
    meta.print();
    std::printf("\naverage time for 10%% of fingerprints to expire: "
                "%.2f days (paper: ~2 days)\n"
                "paper shape: T_boot drifts linearly (min |r| = 0.9997); "
                "most fingerprints last multiple days.\n",
                mean_p10);
    return 0;
}
