/**
 * @file
 * Figure 9 / Experiment 4: repeated launches at a short interval
 * trigger the load balancer and spill instances onto helper hosts.
 *
 * Protocol (paper Section 5.1): six launches of 800 instances at a
 * 10-minute interval. Both the per-launch apparent host count and the
 * cumulative count grow drastically over the first three launches and
 * then saturate. Controls: a 2-minute interval barely adds hosts (few
 * instances are reaped between launches, so few are created), and a
 * 45-minute interval never leaves the base hosts.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "obs/export.hpp"

namespace sim = eaao::sim;

namespace {

std::size_t
runInterval(std::uint64_t seed, sim::Duration interval, bool print,
            eaao::obs::Observer observer)
{
    using namespace eaao;
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    cfg.obs = observer;
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);

    core::TextTable table;
    table.header({"launch", "apparent hosts", "cumulative"});
    std::set<std::uint64_t> cumulative;
    std::size_t first = 0;
    for (int launch = 1; launch <= 6; ++launch) {
        core::LaunchOptions opts;
        opts.hold = sim::Duration::seconds(30);
        const core::LaunchObservation obs =
            core::launchAndObserve(platform, svc, opts);
        const auto apparent = obs.apparentHosts();
        cumulative.insert(apparent.begin(), apparent.end());
        if (launch == 1)
            first = cumulative.size();
        table.row({core::format("%d", launch),
                   core::format("%zu", apparent.size()),
                   core::format("%zu", cumulative.size())});
        if (launch < 6)
            platform.advance(interval - opts.hold);
    }
    if (print)
        table.print();
    return cumulative.size() - first;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eaao;

    const obs::ObsConfig obs_cfg = obs::ObsConfig::fromArgs(argc, argv);
    obs::TrialSet obs_set(obs_cfg);
    obs_set.prepare(4); // one slot per platform run, in call order

    std::printf("=== Figure 9 / Experiment 4: launches at a 10-minute "
                "interval (us-east1) ===\n\n");
    runInterval(91, sim::Duration::minutes(10), true,
                obs_set.observer(0));

    std::printf("\nextra hosts discovered after launch 1, by launch "
                "interval:\n\n");
    eaao::core::TextTable controls;
    controls.header({"interval", "new hosts after 6 launches"});
    const std::size_t at_2min =
        runInterval(92, sim::Duration::minutes(2), false,
                    obs_set.observer(1));
    const std::size_t at_10min =
        runInterval(91, sim::Duration::minutes(10), false,
                    obs_set.observer(2));
    const std::size_t at_45min =
        runInterval(93, sim::Duration::minutes(45), false,
                    obs_set.observer(3));
    controls.row({"2 min", eaao::core::format("%zu", at_2min)});
    controls.row({"10 min", eaao::core::format("%zu", at_10min)});
    controls.row({"45 min", eaao::core::format("%zu", at_45min)});
    controls.print();

    std::printf("\npaper shape: drastic growth that saturates after "
                "~3 launches at 10 min\n(+177 hosts); almost none at "
                "2 min (+12) or beyond the 30-minute demand\nwindow "
                "(45 min).\n");
    obs::writeOutputs(obs_cfg, obs_set);
    return 0;
}
