/**
 * @file
 * Section 5.2, Strategy 1: naive instance launching.
 *
 * The attacker launches 4,800 instances from six cold services without
 * any insight into the placement policy. Because base hosts are
 * account-affine, coverage is zero unless the attacker's and victim's
 * base hosts happen to overlap — which the paper observed only for
 * Account 2 in us-west1 (100%) and Account 3 in us-central1 (81%).
 */

#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "stats/summary.hpp"

namespace {

constexpr int kRuns = 3;

struct DcSetup
{
    eaao::faas::DataCenterProfile profile;
    std::uint32_t shards[3]; // attacker, Account 2, Account 3
};

} // namespace

int
main()
{
    using namespace eaao;

    std::printf("=== Section 5.2, Strategy 1: naive launching "
                "(4800 instances, 6 cold services) ===\n\n");

    // Shard assignments reproduce the per-account accidents the paper
    // observed (overlapping base hosts only for Acc2/us-west1 and
    // Acc3/us-central1); see DESIGN.md.
    const std::vector<DcSetup> dcs = {
        {faas::DataCenterProfile::usEast1(), {0, 1, 2}},
        {faas::DataCenterProfile::usCentral1(), {0, 1, 0}},
        {faas::DataCenterProfile::usWest1(), {0, 0, 1}},
    };

    core::TextTable table;
    table.header({"DC / victim", "coverage", "(sd)",
                  "attacker hosts", "paper"});

    for (const DcSetup &dc : dcs) {
        for (int victim_idx = 0; victim_idx < 2; ++victim_idx) {
            stats::OnlineStats coverage;
            std::size_t attacker_hosts = 0;
            for (int run = 0; run < kRuns; ++run) {
                faas::PlatformConfig cfg;
                cfg.profile = dc.profile;
                cfg.seed = 5200 + victim_idx * 57 + run;
                faas::Platform platform(cfg);
                const auto attacker =
                    platform.createAccount(dc.shards[0]);
                const auto victim = platform.createAccount(
                    dc.shards[1 + victim_idx]);

                const core::CampaignResult attack =
                    core::runNaiveCampaign(platform, attacker, 6, 800);
                attacker_hosts = attack.occupied_hosts.size();

                const auto vsvc = platform.deployService(
                    victim, faas::ExecEnv::Gen1);
                const auto vids = platform.connect(vsvc, 100);
                coverage.add(core::measureCoverageOracle(
                                 platform, attack.occupied_hosts, vids)
                                 .coverage());
            }
            const char *paper = "0%";
            if (dc.profile.name == "us-west1" && victim_idx == 0)
                paper = "100%";
            if (dc.profile.name == "us-central1" && victim_idx == 1)
                paper = "81%";
            table.row({dc.profile.name + " / Acc" +
                           std::to_string(victim_idx + 2),
                       core::percent(coverage.mean()),
                       core::format("%.3f", coverage.stddev()),
                       core::format("%zu", attacker_hosts), paper});
        }
    }
    table.print();

    std::printf("\npaper shape: despite 4800 instances, the naive "
                "strategy stays on the\nattacker's base hosts — zero "
                "coverage unless base sets accidentally overlap.\n");
    return 0;
}
