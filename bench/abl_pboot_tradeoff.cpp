/**
 * @file
 * Ablation: the p_boot trade-off between instantaneous accuracy and
 * fingerprint lifetime.
 *
 * Figure 4 alone suggests any p_boot in [100 ms, 1 s] is fine; but the
 * rounding precision also sets how long a fingerprint survives drift
 * (expiration ~ p_boot * f / eps, Section 4.4.2). This bench sweeps
 * p_boot and reports both sides — the reason the paper settles on the
 * largest value in the accuracy sweet spot (1 s).
 */

#include <cstdio>
#include <set>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/tracker.hpp"
#include "stats/cdf.hpp"
#include "stats/clustering.hpp"

int
main()
{
    using namespace eaao;

    std::printf("=== Ablation: p_boot — accuracy now vs lifetime "
                "later (us-east1) ===\n\n");

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 7400;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);

    // One launch for the accuracy side...
    core::LaunchOptions launch;
    launch.instances = 600;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(p, svc, launch);
    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));

    // ...and 48 hours of tracking (one probe per host) for the
    // lifetime side.
    std::vector<faas::InstanceId> probes;
    {
        std::set<hw::HostId> seen;
        for (const auto id : obs.ids) {
            if (seen.insert(p.oracleHostOf(id)).second)
                probes.push_back(id);
        }
    }
    std::vector<core::FingerprintHistory> histories(probes.size());
    for (int hour = 0; hour <= 48; ++hour) {
        for (std::size_t i = 0; i < probes.size(); ++i) {
            faas::SandboxView sbx = p.sandbox(probes[i]);
            histories[i].add(p.now(),
                             core::readGen1Median(sbx, 15).tboot_s);
        }
        p.advance(sim::Duration::hours(1));
    }

    core::TextTable table;
    table.header({"p_boot", "FMI", "precision", "recall",
                  "median expiration", "10% expire by"});
    for (const double p_boot : {0.01, 0.1, 0.3, 1.0, 3.0, 10.0, 100.0}) {
        std::vector<std::uint64_t> keys;
        for (const auto &reading : obs.readings) {
            keys.push_back(core::fingerprintKey(
                core::quantizeGen1(reading, p_boot)));
        }
        const auto pc = stats::comparePairs(keys, oracle);

        std::vector<double> expirations_d;
        for (const auto &history : histories) {
            const auto exp_s = history.expirationSeconds(p_boot);
            expirations_d.push_back(exp_s ? *exp_s / 86400.0 : 1e6);
        }
        const stats::EmpiricalCdf cdf(expirations_d);

        auto days = [](double d) {
            return d >= 1e5 ? std::string(">1000 d")
                            : core::format("%.1f d", d);
        };
        table.row({core::format("%g s", p_boot),
                   core::format("%.4f", pc.fmi()),
                   core::format("%.4f", pc.precision()),
                   core::format("%.4f", pc.recall()),
                   days(cdf.quantile(0.5)), days(cdf.quantile(0.1))});
    }
    table.print();

    std::printf("\ntakeaway: precision only starts to suffer beyond "
                "~10 s, while lifetime\nscales linearly with p_boot — "
                "hence the paper's choice of p_boot = 1 s, the\nlargest "
                "value inside the near-perfect accuracy plateau.\n");
    return 0;
}
