/**
 * @file
 * Ablation: robustness of the covert-channel verification pipeline.
 *
 * The scalable verifier's correctness rests on the 30-of-60 majority
 * rule absorbing channel noise. This bench degrades the channel —
 * higher background-contention probability, lower per-unit detection
 * probability, fewer trials — and reports clustering accuracy and the
 * test count (noise pushes groups onto the pairwise fallback path).
 */

#include <cstdio>
#include <vector>

#include "channel/covert.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "stats/clustering.hpp"

namespace {

using namespace eaao;

struct Row
{
    channel::RngChannelConfig chan;
    const char *label;
};

} // namespace

int
main()
{
    std::printf("=== Ablation: covert-channel noise vs verification "
                "accuracy (400 instances) ===\n\n");

    std::vector<Row> rows;
    {
        channel::RngChannelConfig c;
        rows.push_back({c, "baseline (60 trials, bg 0.8%)"});
    }
    {
        channel::RngChannelConfig c;
        c.background_prob = 0.10;
        rows.push_back({c, "noisy resource (bg 10%)"});
    }
    {
        channel::RngChannelConfig c;
        c.background_prob = 0.30;
        rows.push_back({c, "very noisy resource (bg 30%)"});
    }
    {
        channel::RngChannelConfig c;
        c.unit_detect_prob = 0.70;
        rows.push_back({c, "weak signal (unit detect 70%)"});
    }
    {
        channel::RngChannelConfig c;
        c.trials = 10;
        c.detect_min = 5;
        rows.push_back({c, "fast test (10 trials)"});
    }
    {
        channel::RngChannelConfig c;
        c.trials = 6;
        c.detect_min = 3;
        c.background_prob = 0.10;
        rows.push_back({c, "fast test + noisy (worst case)"});
    }

    core::TextTable table;
    table.header({"channel", "tests", "precision", "recall",
                  "test time"});

    for (std::size_t r = 0; r < rows.size(); ++r) {
        faas::PlatformConfig cfg;
        cfg.profile = faas::DataCenterProfile::usEast1();
        cfg.seed = 7300 + r;
        faas::Platform p(cfg);
        const auto acct = p.createAccount();
        const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
        core::LaunchOptions launch;
        launch.instances = 400;
        launch.disconnect_after = false;
        const auto obs = core::launchAndObserve(p, svc, launch);

        channel::RngChannel chan(p, rows[r].chan);
        const auto result = core::verifyScalable(
            p, chan, obs.ids, obs.fp_keys, obs.class_keys);

        std::vector<std::uint64_t> oracle;
        for (const auto id : obs.ids)
            oracle.push_back(p.oracleHostOf(id));
        const auto pc = stats::comparePairs(result.cluster_of, oracle);

        table.row({rows[r].label,
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    result.group_tests)),
                   core::format("%.4f", pc.precision()),
                   core::format("%.4f", pc.recall()),
                   result.elapsed.str()});
    }
    table.print();

    std::printf("\ntakeaway: the majority rule keeps verification "
                "exact under realistic noise;\nonly an aggressively "
                "shortened test under heavy background contention "
                "starts\nto err — and it shows up first as extra "
                "fallback tests, not wrong clusters.\n");
    return 0;
}
