/**
 * @file
 * Section 6: potential mitigations, evaluated end-to-end.
 *
 * For each defense we rerun the relevant attack primitive and report
 * what breaks and what it costs:
 *
 *  1. Gen 1 trap-and-emulate rdtsc (+ optional cpuid masking): the
 *     derived "boot time" becomes the container's start time, so
 *     fingerprints stop clustering co-located instances — at the price
 *     of ~50x slower timer accesses (with per-workload impact).
 *  2. Gen 2 hardware TSC offsetting + scaling: the refined frequency
 *     collapses to the nominal value; fingerprints lose all precision
 *     at zero runtime overhead.
 *  3. Co-location-resistant scheduling: accounts are confined to their
 *     home shards; the optimized strategy's victim coverage collapses.
 *  4. Contention-burst detection: large-scale covert-channel
 *     verification lights up the provider's detector.
 */

#include <cstdio>
#include <vector>

#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "defense/detector.hpp"
#include "defense/tsc_defense.hpp"
#include "stats/clustering.hpp"

namespace {

using namespace eaao;

faas::PlatformConfig
baseConfig(std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    return cfg;
}

/** Fingerprint quality of a 400-instance launch vs the oracle. */
stats::PairConfusion
fingerprintQuality(faas::Platform &platform, faas::ExecEnv env)
{
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, env);
    core::LaunchOptions launch;
    launch.instances = 400;
    launch.disconnect_after = false;
    const core::LaunchObservation obs =
        core::launchAndObserve(platform, svc, launch);
    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(platform.oracleHostOf(id));
    return stats::comparePairs(obs.fp_keys, oracle);
}

} // namespace

int
main()
{
    std::printf("=== Section 6: mitigations ===\n\n");

    // ---- 1. Gen 1 trap-and-emulate. ----
    {
        std::printf("-- Gen 1: trap-and-emulate rdtsc/rdtscp --\n");
        core::TextTable table;
        table.header({"defense", "FMI", "precision", "recall",
                      "timer access"});

        faas::Platform off(baseConfig(601));
        const auto q_off = fingerprintQuality(off, faas::ExecEnv::Gen1);

        faas::PlatformConfig cfg = baseConfig(602);
        cfg.tsc_defense.gen1 = defense::Gen1TscPolicy::TrapEmulate;
        faas::Platform on(cfg);
        const auto q_on = fingerprintQuality(on, faas::ExecEnv::Gen1);

        table.row({"native TSC", core::format("%.4f", q_off.fmi()),
                   core::format("%.4f", q_off.precision()),
                   core::format("%.4f", q_off.recall()),
                   cfg.tsc_defense.native_timer_cost.str()});
        table.row({"trap-and-emulate",
                   core::format("%.4f", q_on.fmi()),
                   core::format("%.4f", q_on.precision()),
                   core::format("%.4f", q_on.recall()),
                   cfg.tsc_defense.emulated_timer_cost.str()});
        table.print();

        std::printf("\ntimer-overhead impact per workload class "
                    "(trap-and-emulate):\n\n");
        core::TextTable impact;
        impact.header({"workload", "timer calls/op", "base latency",
                       "added latency"});
        std::size_t count = 0;
        const auto *profiles = defense::timerSensitiveWorkloads(count);
        for (std::size_t i = 0; i < count; ++i) {
            const double frac = defense::timerOverheadFraction(
                cfg.tsc_defense, profiles[i]);
            impact.row({profiles[i].name,
                        core::format("%.0f",
                                     profiles[i].timer_calls_per_op),
                        profiles[i].base_op_latency.str(),
                        core::percent(frac)});
        }
        impact.print();
        std::printf("\npaper reference: Cassandra write latency "
                    "reportedly improved 43%% when\nmoving OFF a "
                    "trapping clock source — the same cost this "
                    "defense reintroduces.\n\n");
    }

    // ---- 2. Gen 2 hardware TSC scaling. ----
    {
        std::printf("-- Gen 2: TSC offsetting + scaling --\n");
        core::TextTable table;
        table.header({"defense", "FMI", "precision",
                      "distinct fingerprints"});

        faas::Platform off(baseConfig(603));
        const auto q_off = fingerprintQuality(off, faas::ExecEnv::Gen2);

        faas::PlatformConfig cfg = baseConfig(604);
        cfg.tsc_defense.gen2 = defense::Gen2TscPolicy::OffsetAndScale;
        faas::Platform on(cfg);
        const auto acct = on.createAccount();
        const auto svc = on.deployService(acct, faas::ExecEnv::Gen2);
        core::LaunchOptions launch;
        launch.instances = 400;
        launch.disconnect_after = false;
        const auto obs = core::launchAndObserve(on, svc, launch);
        std::vector<std::uint64_t> oracle;
        for (const auto id : obs.ids)
            oracle.push_back(on.oracleHostOf(id));
        const auto q_on = stats::comparePairs(obs.fp_keys, oracle);
        const std::size_t distinct = stats::distinctCount(obs.fp_keys);

        table.row({"offset only", core::format("%.4f", q_off.fmi()),
                   core::format("%.4f", q_off.precision()), "-"});
        table.row({"offset + scale", core::format("%.4f", q_on.fmi()),
                   core::format("%.4f", q_on.precision()),
                   core::format("%zu (one per SKU)", distinct)});
        table.print();
        std::printf("\n");
    }

    // ---- 3. Co-location-resistant scheduling. ----
    {
        std::printf("-- scheduler: co-location-resistant placement "
                    "(account isolation) --\n");
        core::TextTable table;
        table.header({"scheduling", "victim coverage",
                      "attacker hosts", "helper relief"});
        for (const bool isolate : {false, true}) {
            faas::PlatformConfig cfg = baseConfig(605 + isolate);
            cfg.orchestrator.isolate_accounts = isolate;
            faas::Platform p(cfg);
            const auto attacker = p.createAccount(0);
            const auto victim = p.createAccount(1);
            const auto attack = core::runOptimizedCampaign(
                p, attacker, core::CampaignConfig{});
            const auto vsvc =
                p.deployService(victim, faas::ExecEnv::Gen1);
            const auto vids = p.connect(vsvc, 100);
            const auto cov = core::measureCoverageOracle(
                p, attack.occupied_hosts, vids);
            table.row(
                {isolate ? "co-location-resistant" : "default",
                 core::percent(cov.coverage()),
                 core::format("%zu", attack.occupied_hosts.size()),
                 isolate ? "home shard only (hot services overload it)"
                         : "DC-wide helper hosts"});
        }
        table.print();
        std::printf("\n");
    }

    // ---- 4. Contention-burst detection. ----
    {
        std::printf("-- provider-side contention detection --\n");
        faas::Platform p(baseConfig(607));
        const auto acct = p.createAccount();
        const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
        core::LaunchOptions launch;
        launch.instances = 800;
        launch.disconnect_after = false;
        const auto obs = core::launchAndObserve(p, svc, launch);

        defense::ContentionDetector detector;
        channel::RngChannel chan(p);
        chan.attachDetector(&detector);
        const auto verified = core::verifyScalable(
            p, chan, obs.ids, obs.fp_keys, obs.class_keys);
        const auto flagged = detector.flaggedHosts(p.now());
        const auto implicated = detector.implicatedAccounts(p.now());

        core::TextTable table;
        table.header({"metric", "value"});
        table.row({"verification group tests",
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    verified.group_tests))});
        table.row({"contention bursts observed",
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    detector.totalBursts()))});
        table.row({"hosts flagged",
                   core::format("%zu", flagged.size())});
        table.row({"accounts implicated",
                   core::format("%zu", implicated.size())});
        table.print();
        std::printf("\nlarge-scale co-location verification is loud: "
                    "every tested host shows a\ncontention burst, so a "
                    "provider watching rarely-used shared resources "
                    "can\nflag the verifying account within one "
                    "detector window.\n");
    }
    return 0;
}
