/**
 * @file
 * Figure 7 / Experiment 2: apparent-host footprint of repeated cold
 * launches of the same service.
 *
 * Protocol (paper Section 5.1): launch 800 instances, disconnect, wait
 * 45 minutes (so all idle instances are reaped and the service cools
 * down), repeat six times. Apparent hosts come from Gen 1
 * fingerprints; the cumulative curve stays nearly flat because the
 * account keeps its base hosts. A second pass uses a freshly deployed
 * service per launch (rebuilt images) and shows the same pattern.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "obs/export.hpp"

namespace {

void
runVariant(eaao::faas::Platform &platform, eaao::faas::AccountId acct,
           bool fresh_service_per_launch, const char *label)
{
    using namespace eaao;

    faas::ServiceId svc =
        platform.deployService(acct, faas::ExecEnv::Gen1);

    core::TextTable table;
    table.header({"launch", "apparent hosts", "cumulative"});
    std::set<std::uint64_t> cumulative;
    for (int launch = 1; launch <= 6; ++launch) {
        if (fresh_service_per_launch && launch > 1) {
            svc = platform.deployService(acct, faas::ExecEnv::Gen1);
            platform.redeployService(svc); // freshly built image
        }
        core::LaunchOptions opts;
        const core::LaunchObservation obs =
            core::launchAndObserve(platform, svc, opts);
        const auto apparent = obs.apparentHosts();
        cumulative.insert(apparent.begin(), apparent.end());
        table.row({core::format("%d", launch),
                   core::format("%zu", apparent.size()),
                   core::format("%zu", cumulative.size())});
        platform.advance(sim::Duration::minutes(45) - opts.hold);
    }
    std::printf("%s\n", label);
    table.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eaao;

    const obs::ObsConfig obs_cfg = obs::ObsConfig::fromArgs(argc, argv);
    obs::TrialSet obs_set(obs_cfg);
    obs_set.prepare(1);

    std::printf("=== Figure 7 / Experiment 2: repeated cold launches, "
                "45-minute interval (us-east1) ===\n\n");

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 71;
    cfg.obs = obs_set.observer(0);
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();

    runVariant(platform, acct, false,
               "-- same service in every launch --");
    runVariant(platform, acct, true,
               "-- freshly deployed service per launch (rebuilt "
               "images) --");

    std::printf("paper shape: ~75 apparent hosts per launch; the "
                "cumulative count grows\nonly slightly (base hosts are "
                "account-affine), in both variants.\n");
    obs::writeOutputs(obs_cfg, obs_set);
    return 0;
}
